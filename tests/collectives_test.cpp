// Tests for the Transport-based collectives (threaded executor required).
#include <gtest/gtest.h>

#include <numeric>

#include "cyclick/runtime/collectives.hpp"
#include "cyclick/runtime/spmd.hpp"

namespace cyclick {
namespace {

SpmdExecutor threaded(i64 p) { return SpmdExecutor(p, SpmdExecutor::Mode::kThreads); }

TEST(Collectives, BroadcastFromEveryRoot) {
  const i64 p = 6;
  for (i64 root = 0; root < p; ++root) {
    InProcessTransport tr(p);
    std::vector<std::vector<double>> got(static_cast<std::size_t>(p));
    threaded(p).run([&](i64 rank) {
      std::vector<double> buf(4, 0.0);
      if (rank == root) buf = {1.5, 2.5, 3.5, static_cast<double>(root)};
      bcast(tr, rank, root, buf);
      got[static_cast<std::size_t>(rank)] = buf;
    });
    for (i64 r = 0; r < p; ++r)
      EXPECT_EQ(got[static_cast<std::size_t>(r)],
                (std::vector<double>{1.5, 2.5, 3.5, static_cast<double>(root)}))
          << "root=" << root << " rank=" << r;
    EXPECT_EQ(tr.in_flight(), 0);
  }
}

TEST(Collectives, GatherConcatenatesInRankOrder) {
  const i64 p = 5;
  InProcessTransport tr(p);
  std::vector<int> result;
  threaded(p).run([&](i64 rank) {
    // Rank r contributes r+1 copies of r.
    std::vector<int> mine(static_cast<std::size_t>(rank + 1), static_cast<int>(rank));
    auto all = gather<int>(tr, rank, /*root=*/2, mine);
    if (rank == 2) result = std::move(all);
  });
  std::vector<int> want;
  for (int r = 0; r < 5; ++r) want.insert(want.end(), static_cast<std::size_t>(r + 1), r);
  EXPECT_EQ(result, want);
}

TEST(Collectives, AllreduceSum) {
  const i64 p = 8;
  InProcessTransport tr(p);
  std::vector<std::vector<i64>> got(static_cast<std::size_t>(p));
  threaded(p).run([&](i64 rank) {
    std::vector<i64> buf{rank, 10 * rank, 1};
    allreduce(tr, rank, buf, [](i64 a, i64 b) { return a + b; });
    got[static_cast<std::size_t>(rank)] = buf;
  });
  const i64 ranksum = 28;  // 0+..+7
  for (i64 r = 0; r < p; ++r)
    EXPECT_EQ(got[static_cast<std::size_t>(r)], (std::vector<i64>{ranksum, 10 * ranksum, 8}))
        << r;
}

TEST(Collectives, AllreduceMaxDeterministic) {
  const i64 p = 4;
  InProcessTransport tr(p);
  std::vector<double> seen(static_cast<std::size_t>(p));
  threaded(p).run([&](i64 rank) {
    std::vector<double> buf{static_cast<double>((rank * 7) % 5)};
    allreduce(tr, rank, buf, [](double a, double b) { return a > b ? a : b; });
    seen[static_cast<std::size_t>(rank)] = buf[0];
  });
  for (const double v : seen) EXPECT_EQ(v, 4.0);  // max of {0,2,4,1}
}

TEST(Collectives, AlltoallvExchangesEveryPair) {
  const i64 p = 5;
  InProcessTransport tr(p);
  std::vector<std::vector<std::vector<i64>>> results(static_cast<std::size_t>(p));
  threaded(p).run([&](i64 rank) {
    std::vector<std::vector<i64>> outgoing(static_cast<std::size_t>(p));
    for (i64 r = 0; r < p; ++r)
      outgoing[static_cast<std::size_t>(r)] = {100 * rank + r};  // tagged payload
    results[static_cast<std::size_t>(rank)] = alltoallv(tr, rank, outgoing);
  });
  for (i64 me = 0; me < p; ++me)
    for (i64 from = 0; from < p; ++from)
      EXPECT_EQ(results[static_cast<std::size_t>(me)][static_cast<std::size_t>(from)],
                (std::vector<i64>{100 * from + me}))
          << "me=" << me << " from=" << from;
  EXPECT_EQ(tr.in_flight(), 0);
}

TEST(Collectives, AlltoallvEmptyPayloads) {
  const i64 p = 3;
  InProcessTransport tr(p);
  threaded(p).run([&](i64 rank) {
    std::vector<std::vector<double>> outgoing(static_cast<std::size_t>(p));
    const auto incoming = alltoallv(tr, rank, outgoing);
    for (const auto& v : incoming) EXPECT_TRUE(v.empty());
  });
}

TEST(Collectives, SingleRankIsNoop) {
  InProcessTransport tr(1);
  threaded(1).run([&](i64 rank) {
    std::vector<int> buf{42};
    bcast(tr, rank, 0, buf);
    allreduce(tr, rank, buf, [](int a, int b) { return a + b; });
    EXPECT_EQ(buf, (std::vector<int>{42}));
    EXPECT_EQ(gather<int>(tr, rank, 0, buf), (std::vector<int>{42}));
  });
}

// --- Tree vs linear differential tests -------------------------------------
// The binomial-tree collectives must agree with the pre-tree linear
// implementations (kept in namespace linear) on exact-arithmetic payloads.
// p = 7 keeps the tree ragged (non-power-of-two worlds lose out-of-range
// children), which is where index arithmetic goes wrong first.

TEST(Collectives, TreeBcastMatchesLinearEveryRootRaggedWorld) {
  const i64 p = 7;
  for (i64 root = 0; root < p; ++root) {
    std::vector<std::vector<i64>> tree_got(static_cast<std::size_t>(p));
    std::vector<std::vector<i64>> lin_got(static_cast<std::size_t>(p));
    {
      InProcessTransport tr(p);
      threaded(p).run([&](i64 rank) {
        std::vector<i64> buf{rank == root ? 7 * root + 1 : -1, rank == root ? root : -1};
        bcast(tr, rank, root, buf);
        tree_got[static_cast<std::size_t>(rank)] = buf;
      });
      EXPECT_EQ(tr.in_flight(), 0);
    }
    {
      InProcessTransport tr(p);
      threaded(p).run([&](i64 rank) {
        std::vector<i64> buf{rank == root ? 7 * root + 1 : -1, rank == root ? root : -1};
        linear::bcast(tr, rank, root, buf);
        lin_got[static_cast<std::size_t>(rank)] = buf;
      });
    }
    EXPECT_EQ(tree_got, lin_got) << "root=" << root;
  }
}

TEST(Collectives, TreeGatherMatchesLinearEveryRootVariableSizes) {
  const i64 p = 7;
  for (i64 root = 0; root < p; ++root) {
    std::vector<int> tree_all, lin_all;
    {
      InProcessTransport tr(p);
      threaded(p).run([&](i64 rank) {
        // Rank r contributes (r * 3) % 5 elements — including empty ones.
        std::vector<int> mine(static_cast<std::size_t>((rank * 3) % 5),
                              static_cast<int>(100 + rank));
        auto all = gather<int>(tr, rank, root, mine);
        if (rank == root) tree_all = std::move(all);
      });
      EXPECT_EQ(tr.in_flight(), 0);
    }
    {
      InProcessTransport tr(p);
      threaded(p).run([&](i64 rank) {
        std::vector<int> mine(static_cast<std::size_t>((rank * 3) % 5),
                              static_cast<int>(100 + rank));
        auto all = linear::gather<int>(tr, rank, root, mine);
        if (rank == root) lin_all = std::move(all);
      });
    }
    EXPECT_EQ(tree_all, lin_all) << "root=" << root;
  }
}

TEST(Collectives, TreeAllreduceMatchesLinearOnExactPayloads) {
  // Integer sums are associative, so the tree's fold order and the linear
  // left fold must agree bit-for-bit, power-of-two world or not.
  for (const i64 p : {2, 5, 7, 8}) {
    std::vector<std::vector<i64>> tree_got(static_cast<std::size_t>(p));
    std::vector<std::vector<i64>> lin_got(static_cast<std::size_t>(p));
    {
      InProcessTransport tr(p);
      threaded(p).run([&](i64 rank) {
        std::vector<i64> buf{rank + 1, rank * rank, 1};
        allreduce(tr, rank, buf, [](i64 a, i64 b) { return a + b; });
        tree_got[static_cast<std::size_t>(rank)] = buf;
      });
    }
    {
      InProcessTransport tr(p);
      threaded(p).run([&](i64 rank) {
        std::vector<i64> buf{rank + 1, rank * rank, 1};
        linear::allreduce(tr, rank, buf, [](i64 a, i64 b) { return a + b; });
        lin_got[static_cast<std::size_t>(rank)] = buf;
      });
    }
    EXPECT_EQ(tree_got, lin_got) << "p=" << p;
  }
}

TEST(Collectives, RotatedAlltoallvMatchesLinear) {
  const i64 p = 7;
  std::vector<std::vector<std::vector<i64>>> rot(static_cast<std::size_t>(p));
  std::vector<std::vector<std::vector<i64>>> lin(static_cast<std::size_t>(p));
  const auto payload = [p](i64 from, i64 to) {
    return std::vector<i64>(static_cast<std::size_t>((from + to) % 3 + 1), from * p + to);
  };
  {
    InProcessTransport tr(p);
    threaded(p).run([&](i64 rank) {
      std::vector<std::vector<i64>> outgoing(static_cast<std::size_t>(p));
      for (i64 r = 0; r < p; ++r) outgoing[static_cast<std::size_t>(r)] = payload(rank, r);
      rot[static_cast<std::size_t>(rank)] = alltoallv(tr, rank, outgoing);
    });
    EXPECT_EQ(tr.in_flight(), 0);
  }
  {
    InProcessTransport tr(p);
    threaded(p).run([&](i64 rank) {
      std::vector<std::vector<i64>> outgoing(static_cast<std::size_t>(p));
      for (i64 r = 0; r < p; ++r) outgoing[static_cast<std::size_t>(r)] = payload(rank, r);
      lin[static_cast<std::size_t>(rank)] = linear::alltoallv(tr, rank, outgoing);
    });
  }
  EXPECT_EQ(rot, lin);
}

// --- Deadlock guard ---------------------------------------------------------
// Under the sequential schedule a blocking collective's matching sends can
// never be posted; every entry point must throw the named error instead of
// hanging the test suite.

TEST(Collectives, SequentialScheduleThrowsInsteadOfDeadlocking) {
  const i64 p = 3;
  const SpmdExecutor seq(p, SpmdExecutor::Mode::kSequential);
  InProcessTransport tr(p);

  EXPECT_THROW(seq.run([&](i64 rank) {
                 std::vector<int> buf{1};
                 bcast(tr, rank, 0, buf);
               }),
               CollectiveDeadlockError);
  EXPECT_THROW(seq.run([&](i64 rank) {
                 const std::vector<int> mine{static_cast<int>(rank)};
                 (void)gather<int>(tr, rank, 0, mine);
               }),
               CollectiveDeadlockError);
  EXPECT_THROW(seq.run([&](i64 rank) {
                 std::vector<int> buf{1};
                 allreduce(tr, rank, buf, [](int a, int b) { return a + b; });
               }),
               CollectiveDeadlockError);
  EXPECT_THROW(seq.run([&](i64 rank) {
                 const std::vector<std::vector<int>> outgoing(static_cast<std::size_t>(p));
                 (void)alltoallv(tr, rank, outgoing);
               }),
               CollectiveDeadlockError);
  // The linear references refuse the same schedules.
  EXPECT_THROW(seq.run([&](i64 rank) {
                 std::vector<int> buf{1};
                 linear::bcast(tr, rank, 0, buf);
               }),
               CollectiveDeadlockError);
  EXPECT_EQ(tr.in_flight(), 0);  // the guard fires before any send
}

TEST(Collectives, SingleRankSequentialIsStillFine) {
  // p == 1 has no blocking receives, so even the sequential schedule (and
  // the threaded executor's 1-rank sequential fallback) must pass.
  const SpmdExecutor seq(1, SpmdExecutor::Mode::kSequential);
  InProcessTransport tr(1);
  seq.run([&](i64 rank) {
    std::vector<int> buf{9};
    bcast(tr, rank, 0, buf);
    allreduce(tr, rank, buf, [](int a, int b) { return a * b; });
    EXPECT_EQ(gather<int>(tr, rank, 0, buf), (std::vector<int>{9}));
  });
}

}  // namespace
}  // namespace cyclick
