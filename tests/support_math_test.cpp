// Unit and property tests for the number-theory substrate.
#include <gtest/gtest.h>

#include "cyclick/support/math.hpp"

namespace cyclick {
namespace {

TEST(FloorDiv, MatchesMathematicalFloor) {
  EXPECT_EQ(floor_div(7, 2), 3);
  EXPECT_EQ(floor_div(-7, 2), -4);
  EXPECT_EQ(floor_div(7, -2), -4);
  EXPECT_EQ(floor_div(-7, -2), 3);
  EXPECT_EQ(floor_div(6, 3), 2);
  EXPECT_EQ(floor_div(-6, 3), -2);
  EXPECT_EQ(floor_div(0, 5), 0);
}

TEST(FloorMod, HasSignOfDivisor) {
  EXPECT_EQ(floor_mod(7, 3), 1);
  EXPECT_EQ(floor_mod(-7, 3), 2);
  EXPECT_EQ(floor_mod(7, -3), -2);
  EXPECT_EQ(floor_mod(-7, -3), -1);
  EXPECT_EQ(floor_mod(0, 9), 0);
}

TEST(FloorDivMod, Identity) {
  for (i64 a = -50; a <= 50; ++a)
    for (i64 b : {-7, -3, -1, 1, 2, 5, 13}) {
      EXPECT_EQ(floor_div(a, b) * b + floor_mod(a, b), a) << a << " " << b;
      if (b > 0) {
        EXPECT_GE(floor_mod(a, b), 0);
        EXPECT_LT(floor_mod(a, b), b);
      }
    }
}

TEST(CeilDiv, MatchesMathematicalCeil) {
  EXPECT_EQ(ceil_div(7, 2), 4);
  EXPECT_EQ(ceil_div(6, 2), 3);
  EXPECT_EQ(ceil_div(-7, 2), -3);
  EXPECT_EQ(ceil_div(1, 5), 1);
  EXPECT_EQ(ceil_div(0, 5), 0);
}

TEST(ExtendedEuclid, BezoutIdentityHolds) {
  for (i64 a = 0; a <= 60; ++a)
    for (i64 b = 0; b <= 60; ++b) {
      if (a == 0 && b == 0) continue;
      const EgcdResult r = extended_euclid(a, b);
      EXPECT_EQ(r.g, gcd_i64(a, b));
      EXPECT_EQ(a * r.x + b * r.y, r.g) << a << " " << b;
    }
}

TEST(ExtendedEuclid, PaperExampleValues) {
  // Figure 6 walkthrough: p=4, k=8, s=9 -> EXTENDED-EUCLID(9, 32) gives
  // d = 1, x = -7, y = 2.
  const EgcdResult r = extended_euclid(9, 32);
  EXPECT_EQ(r.g, 1);
  EXPECT_EQ(9 * r.x + 32 * r.y, 1);
}

TEST(Gcd, BasicAndNegatives) {
  EXPECT_EQ(gcd_i64(12, 18), 6);
  EXPECT_EQ(gcd_i64(-12, 18), 6);
  EXPECT_EQ(gcd_i64(12, -18), 6);
  EXPECT_EQ(gcd_i64(0, 5), 5);
  EXPECT_EQ(gcd_i64(5, 0), 5);
  EXPECT_EQ(gcd_i64(1, 1), 1);
}

TEST(Lcm, BasicAndZero) {
  EXPECT_EQ(lcm_i64(4, 6), 12);
  EXPECT_EQ(lcm_i64(9, 32), 288);
  EXPECT_EQ(lcm_i64(0, 7), 0);
  EXPECT_EQ(lcm_i64(7, 7), 7);
}

TEST(Lcm, OverflowIsRejected) {
  EXPECT_THROW(lcm_i64((INT64_MAX / 2) | 1, (INT64_MAX / 3) | 1), precondition_error);
}

TEST(MulMod, MatchesWideArithmetic) {
  EXPECT_EQ(mulmod(7, 9, 32), (7 * 9) % 32);
  EXPECT_EQ(mulmod(-7, 9, 32), floor_mod(-63, 32));
  // Values that would overflow 64-bit products:
  const i64 big = INT64_C(4'000'000'000);
  EXPECT_EQ(mulmod(big, big, 97),
            static_cast<i64>((static_cast<i128>(big) * big) % 97));
}

TEST(SolveCongruence, FindsSmallestNonnegative) {
  // 9 j ≡ 4 (mod 32): j = 4 works (36 mod 32 = 4).
  const auto j = solve_congruence_min_nonneg(9, 4, 32);
  ASSERT_TRUE(j.has_value());
  EXPECT_EQ(*j, 4);
}

TEST(SolveCongruence, DetectsUnsolvable) {
  // 6 j ≡ 1 (mod 9) has no solution (gcd 3 does not divide 1).
  EXPECT_FALSE(solve_congruence_min_nonneg(6, 1, 9).has_value());
}

TEST(SolveCongruence, ExhaustiveSweepAgainstBruteForce) {
  for (i64 n : {2, 3, 5, 8, 12, 30, 32}) {
    for (i64 a = -2 * n; a <= 2 * n; ++a) {
      for (i64 c = -n; c <= n; ++c) {
        const auto fast = solve_congruence_min_nonneg(a, c, n);
        std::optional<i64> slow;
        for (i64 j = 0; j < n; ++j) {
          if (floor_mod(a * j - c, n) == 0) {
            slow = j;
            break;
          }
        }
        EXPECT_EQ(fast, slow) << "a=" << a << " c=" << c << " n=" << n;
      }
    }
  }
}

TEST(SolveCongruence, NegativeTargets) {
  // The start-location scan feeds negative residues (km - l can be < 0).
  const auto j = solve_congruence_min_nonneg(9, -4, 32);
  ASSERT_TRUE(j.has_value());
  EXPECT_EQ(floor_mod(9 * *j + 4, 32), 0);
}

TEST(ModInverse, InvertsUnits) {
  for (i64 n : {2, 7, 32, 45}) {
    for (i64 a = 1; a < n; ++a) {
      const auto inv = mod_inverse(a, n);
      if (gcd_i64(a, n) == 1) {
        ASSERT_TRUE(inv.has_value());
        EXPECT_EQ(floor_mod(a * *inv, n), 1);
      } else {
        EXPECT_FALSE(inv.has_value());
      }
    }
  }
}

TEST(IsPow2, Classification) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(2));
  EXPECT_TRUE(is_pow2(512));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_FALSE(is_pow2(-4));
  EXPECT_FALSE(is_pow2(520));
}

TEST(Contracts, PreconditionErrorsCarryContext) {
  try {
    solve_congruence_min_nonneg(3, 1, 0);
    FAIL() << "expected precondition_error";
  } catch (const precondition_error& e) {
    EXPECT_NE(std::string(e.what()).find("modulus"), std::string::npos);
  }
}

}  // namespace
}  // namespace cyclick
