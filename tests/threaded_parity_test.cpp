// Threaded-vs-sequential parity for every SPMD engine: the one-thread-per-
// rank executor must produce bit-identical results to the sequential
// schedule across the whole operation surface (races would show up as
// nondeterminism; ThreadSanitizer builds catch the rest).
#include <gtest/gtest.h>

#include <numeric>

#include "cyclick/runtime/intrinsics.hpp"
#include "cyclick/runtime/multidim_array.hpp"
#include "cyclick/runtime/section_ops.hpp"

namespace cyclick {
namespace {

std::vector<double> iota_image(i64 n) {
  std::vector<double> v(static_cast<std::size_t>(n));
  std::iota(v.begin(), v.end(), 0.0);
  return v;
}

TEST(ThreadedParity, SectionEngines) {
  for (int round = 0; round < 5; ++round) {  // repeat to shake out races
    const BlockCyclic dist(6, 5);
    std::vector<std::vector<double>> results;
    for (const auto mode : {SpmdExecutor::Mode::kSequential, SpmdExecutor::Mode::kThreads}) {
      const SpmdExecutor exec(6, mode);
      DistributedArray<double> a(dist, 300), b(dist, 300);
      a.scatter(iota_image(300));
      fill_section(b, {0, 299, 1}, 1.0, exec);
      copy_section(a, {0, 298, 2}, b, {1, 299, 2}, exec);
      transform_section(b, {0, 299, 3}, [](double x) { return 2.0 * x - 1.0; }, exec);
      zip_sections(b, {10, 109, 1}, a, {0, 198, 2}, b, {200, 299, 1},
                   [](double x, double y) { return x + y; }, exec);
      cshift(a, b, 17, exec);
      DistributedArray<double> c(BlockCyclic(6, 3), 300);
      sum_prefix_section(a, {0, 299, 1}, c, {0, 299, 1}, exec);
      std::vector<double> merged = b.gather();
      const auto ci = c.gather();
      merged.insert(merged.end(), ci.begin(), ci.end());
      merged.push_back(
          reduce_section(a, {3, 297, 7}, 0.0, [](double x, double y) { return x + y; }, exec));
      results.push_back(std::move(merged));
    }
    ASSERT_EQ(results[0], results[1]) << "round " << round;
  }
}

TEST(ThreadedParity, RegionEngines) {
  const auto make = [] {
    std::vector<DimMapping> dims;
    dims.emplace_back(18, AffineAlignment::identity(), BlockCyclic(3, 2));
    dims.emplace_back(20, AffineAlignment::identity(), BlockCyclic(2, 3));
    return MultiDimArray<double>(MultiDimMapping{std::move(dims), ProcessorGrid({3, 2})});
  };
  std::vector<std::vector<double>> results;
  for (const auto mode : {SpmdExecutor::Mode::kSequential, SpmdExecutor::Mode::kThreads}) {
    const SpmdExecutor exec(6, mode);
    MultiDimArray<double> a = make();
    MultiDimArray<double> b = make();
    a.scatter(iota_image(18 * 20));
    fill_region(b, Region{{0, 17, 1}, {0, 19, 1}}, 3.0, exec);
    copy_region(a, Region{{1, 17, 2}, {0, 18, 2}}, b, Region{{0, 16, 2}, {1, 19, 2}}, exec);
    transform_region(b, Region{{0, 17, 3}, {0, 19, 1}}, [](double x) { return -x; }, exec);
    auto merged = b.gather();
    merged.push_back(reduce_region(a, Region{{2, 15, 1}, {3, 18, 5}}, 0.0,
                                   [](double x, double y) { return x + y; }, exec));
    results.push_back(std::move(merged));
  }
  ASSERT_EQ(results[0], results[1]);
}

TEST(ThreadedParity, SymmetricAndTransportCopies) {
  const BlockCyclic src_dist(5, 4), dst_dist(5, 7);
  std::vector<std::vector<double>> results;
  for (const auto mode : {SpmdExecutor::Mode::kSequential, SpmdExecutor::Mode::kThreads}) {
    const SpmdExecutor exec(5, mode);
    DistributedArray<double> src(src_dist, 240), d1(dst_dist, 240), d2(dst_dist, 240);
    src.scatter(iota_image(240));
    const RegularSection ssec{0, 238, 2};
    const RegularSection dsec{1, 239, 2};
    symmetric_copy_section(src, ssec, d1, dsec, exec);
    InProcessTransport tr(5);
    const CommPlan plan = build_copy_plan(src, ssec, d2, dsec, exec);
    execute_copy_plan_over(plan, src, d2, exec, tr);
    auto merged = d1.gather();
    const auto d2i = d2.gather();
    merged.insert(merged.end(), d2i.begin(), d2i.end());
    results.push_back(std::move(merged));
  }
  ASSERT_EQ(results[0], results[1]);
}

}  // namespace
}  // namespace cyclick
