// Scale and overflow-adjacent stress tests: large p, k, strides near 2^31,
// lower bounds far from zero — the regimes where naive 32-bit or
// truncating-division implementations break.
#include <gtest/gtest.h>

#include "cyclick/baselines/chatterjee.hpp"
#include "cyclick/baselines/oracle.hpp"
#include "cyclick/core/iterator.hpp"
#include "cyclick/core/lattice_addresser.hpp"

namespace cyclick {
namespace {

TEST(ScaleStress, LargeBlockAndProcessorCounts) {
  // p=256, k=1024 (pk = 262144): full Table-1-style verification on a
  // machine two orders of magnitude beyond the paper's.
  const BlockCyclic dist(256, 1024);
  const i64 pk = dist.row_length();
  for (const i64 s : {i64{7}, i64{1023}, pk - 1, pk + 1, 3 * pk + 17}) {
    for (const i64 m : {i64{0}, i64{127}, i64{255}}) {
      const AccessPattern a = compute_access_pattern(dist, 5, s, m);
      const AccessPattern b = chatterjee_access_pattern(dist, 5, s, m);
      ASSERT_EQ(a, b) << "s=" << s << " m=" << m;
      if (!a.empty()) {
        const i64 d = gcd_i64(s, pk);
        ASSERT_EQ(a.cycle_advance(), (s / d) * 1024) << "s=" << s << " m=" << m;
      }
    }
  }
}

TEST(ScaleStress, StridesNearTwoToThirtyOne) {
  // Large strides exercise the 128-bit congruence arithmetic: s*j and i*s
  // intermediates overflow 64 bits if computed naively without reduction.
  const BlockCyclic dist(32, 64);  // pk = 2048
  for (const i64 s : {(i64{1} << 31) - 1, (i64{1} << 31) + 1, (i64{1} << 40) + 3}) {
    for (const i64 m : {i64{0}, i64{17}, i64{31}}) {
      const AccessPattern a = compute_access_pattern(dist, 0, s, m);
      const AccessPattern b = oracle_access_pattern(dist, 0, s, m);
      ASSERT_EQ(a, b) << "s=" << s << " m=" << m;
    }
  }
}

TEST(ScaleStress, LowerBoundsFarFromZero) {
  const BlockCyclic dist(16, 32);
  for (const i64 l : {i64{1} << 40, -(i64{1} << 20)}) {
    for (const i64 s : {9, 515}) {
      for (const i64 m : {i64{0}, i64{9}}) {
        const AccessPattern a = compute_access_pattern(dist, l, s, m);
        const AccessPattern b = oracle_access_pattern(dist, l, s, m);
        ASSERT_EQ(a, b) << "l=" << l << " s=" << s << " m=" << m;
      }
    }
  }
}

TEST(ScaleStress, IteratorLongWalkStaysExact) {
  // Walk a million accesses and spot-check the invariants: owner stays m,
  // local address equals the distribution's packed address.
  const BlockCyclic dist(32, 16);
  const i64 s = 37;
  LocalAccessIterator it(dist, 3, s, 11);
  ASSERT_FALSE(it.done());
  for (i64 step = 0; step < 1'000'000; ++step) {
    it.advance();
    if ((step & 0xffff) == 0) {
      ASSERT_EQ(dist.owner(it.global()), 11) << step;
      ASSERT_EQ(dist.local_index(it.global()), it.local()) << step;
      ASSERT_EQ(floor_mod(it.global() - 3, s), 0) << step;
    }
  }
  // Final exact check.
  ASSERT_EQ(dist.owner(it.global()), 11);
  ASSERT_EQ(dist.local_index(it.global()), it.local());
}

TEST(ScaleStress, WorstCaseWorkBoundAtScale) {
  const BlockCyclic dist(32, 4096);
  WorkStats stats;
  compute_access_pattern(dist, 0, 32 * 4096 - 1, 31, &stats);  // s = pk-1
  EXPECT_LE(stats.points_visited, 2 * 4096 + 1);
}

TEST(ScaleStress, DegenerateExtremes) {
  // One processor; one-element blocks; both at once.
  for (const auto& [p, k] : {std::pair<i64, i64>{1, 4096}, {4096, 1}, {1, 1}}) {
    const BlockCyclic dist(p, k);
    for (const i64 s : {1, 3, 12345}) {
      const i64 m = p - 1;
      ASSERT_EQ(compute_access_pattern(dist, 2, s, m), oracle_access_pattern(dist, 2, s, m))
          << p << " " << k << " " << s;
    }
  }
}

}  // namespace
}  // namespace cyclick
