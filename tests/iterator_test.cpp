// Tests for the table-free LocalAccessIterator (Section 6.2).
#include <gtest/gtest.h>

#include "cyclick/baselines/oracle.hpp"
#include "cyclick/core/iterator.hpp"

namespace cyclick {
namespace {

TEST(LocalAccessIterator, MatchesOracleSequence) {
  for (i64 p : {1, 2, 4, 5}) {
    for (i64 k : {1, 3, 8}) {
      const BlockCyclic dist(p, k);
      for (i64 s : {1, 2, 7, 9, 15, 31, 33, 64}) {
        for (i64 l : {0, 5}) {
          const RegularSection sec{l, l + 60 * s, s};
          for (i64 m = 0; m < p; ++m) {
            const std::vector<Access> want = oracle_local_sequence(dist, sec, m);
            LocalAccessIterator it(dist, l, s, m);
            std::vector<Access> got;
            for (; !it.done() && it.global() <= sec.upper; it.advance())
              got.push_back({it.global(), it.local()});
            EXPECT_EQ(got, want) << p << " " << k << " " << s << " " << l << " " << m;
          }
        }
      }
    }
  }
}

TEST(LocalAccessIterator, DoneOnlyWhenProcessorOwnsNothing) {
  const BlockCyclic dist(4, 8);
  // s = 32 = pk: only processor 0 is ever touched (from l = 0).
  EXPECT_FALSE(LocalAccessIterator(dist, 0, 32, 0).done());
  EXPECT_TRUE(LocalAccessIterator(dist, 0, 32, 1).done());
  EXPECT_TRUE(LocalAccessIterator(dist, 0, 32, 3).done());
}

TEST(LocalAccessIterator, FixedStepDegenerateCase) {
  // gcd(s, pk) >= k: the iterator falls back to a fixed step.
  const BlockCyclic dist(4, 8);  // pk = 32
  const i64 s = 48;              // gcd(48, 32) = 16 >= 8
  for (i64 m = 0; m < 4; ++m) {
    LocalAccessIterator it(dist, 0, s, m);
    const AccessPattern truth = oracle_access_pattern(dist, 0, s, m);
    if (truth.empty()) {
      EXPECT_TRUE(it.done()) << m;
      continue;
    }
    ASSERT_FALSE(it.done()) << m;
    EXPECT_EQ(it.global(), truth.start_global);
    for (i64 step = 0; step < 5; ++step) {
      const i64 expect_gap = truth.gaps[static_cast<std::size_t>(step % truth.length)];
      const i64 before = it.local();
      EXPECT_EQ(it.peek_gap(), expect_gap);
      it.advance();
      EXPECT_EQ(it.local() - before, expect_gap);
    }
  }
}

TEST(LocalAccessIterator, GlobalAndLocalStayConsistent) {
  // At every step, local() must equal the distribution's packed address of
  // global(), and global() must be a section element on this processor.
  const BlockCyclic dist(4, 8);
  for (i64 s : {9, 17, 23}) {
    for (i64 m = 0; m < 4; ++m) {
      LocalAccessIterator it(dist, 4, s, m);
      for (i64 step = 0; step < 40 && !it.done(); ++step, it.advance()) {
        EXPECT_EQ(dist.owner(it.global()), m);
        EXPECT_EQ(dist.local_index(it.global()), it.local());
        EXPECT_EQ((it.global() - 4) % s, 0);
      }
    }
  }
}

TEST(LocalAccessIterator, RejectsBadArguments) {
  const BlockCyclic dist(4, 8);
  EXPECT_THROW(LocalAccessIterator(dist, 0, 0, 0), precondition_error);
}

TEST(LocalAccessIterator, DescendingMatchesOracleSequence) {
  for (i64 p : {1, 2, 4, 5}) {
    for (i64 k : {1, 3, 8}) {
      const BlockCyclic dist(p, k);
      for (i64 s : {-1, -2, -7, -9, -15, -31, -33, -64}) {
        for (i64 l : {0, 5}) {
          const RegularSection sec{l + 60 * (-s), l, s};  // descends to l
          for (i64 m = 0; m < p; ++m) {
            const std::vector<Access> want = oracle_local_sequence(dist, sec, m);
            LocalAccessIterator it(dist, sec.lower, s, m);
            std::vector<Access> got;
            for (; !it.done() && it.global() >= sec.upper; it.advance())
              got.push_back({it.global(), it.local()});
            EXPECT_EQ(got, want) << p << " " << k << " " << s << " " << l << " " << m;
          }
        }
      }
    }
  }
}

TEST(LocalAccessIterator, DescendingGapMatchesSignedPattern) {
  const BlockCyclic dist(4, 8);
  for (i64 s : {-9, -17, -23, -48}) {
    for (i64 m = 0; m < 4; ++m) {
      const AccessPattern truth = compute_access_pattern_signed(dist, 100, s, m);
      LocalAccessIterator it(dist, 100, s, m);
      if (truth.empty()) {
        EXPECT_TRUE(it.done()) << s << " " << m;
        continue;
      }
      ASSERT_FALSE(it.done()) << s << " " << m;
      EXPECT_EQ(it.global(), truth.start_global);
      EXPECT_EQ(it.local(), truth.start_local);
      for (i64 step = 0; step < 3 * truth.length; ++step) {
        const i64 expect_gap = truth.gaps[static_cast<std::size_t>(step % truth.length)];
        const i64 before = it.local();
        EXPECT_EQ(it.peek_gap(), expect_gap) << s << " " << m << " " << step;
        it.advance();
        EXPECT_EQ(it.local() - before, expect_gap);
        EXPECT_EQ(dist.owner(it.global()), m);
        EXPECT_EQ(dist.local_index(it.global()), it.local());
      }
    }
  }
}

}  // namespace
}  // namespace cyclick
