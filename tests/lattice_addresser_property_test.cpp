// Property-based sweeps: across a large (p, k, s, l) grid, for every
// processor, the lattice algorithm, the sorting baseline (both sort
// policies), the table-free iterator, and — where applicable — the
// Hiranandani special-case method must all agree exactly with the
// exhaustive oracle, and the Theorem-3 step structure must hold.
#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>
#include <vector>

#include "cyclick/baselines/chatterjee.hpp"
#include "cyclick/baselines/hiranandani.hpp"
#include "cyclick/baselines/oracle.hpp"
#include "cyclick/core/iterator.hpp"
#include "cyclick/core/lattice_addresser.hpp"
#include "cyclick/lattice/lattice.hpp"

namespace cyclick {
namespace {

using Config = std::tuple<i64, i64>;  // (p, k)

class AccessPatternProperty : public ::testing::TestWithParam<Config> {};

TEST_P(AccessPatternProperty, AllMethodsMatchOracle) {
  const auto [p, k] = GetParam();
  const BlockCyclic dist(p, k);
  const i64 pk = p * k;
  for (i64 s = 1; s <= 2 * pk + 3; s += (s < 3 * k ? 1 : 7)) {
    for (const i64 l : {0L, 1L, k - 1, k, pk + 3}) {
      for (i64 m = 0; m < p; ++m) {
        const AccessPattern truth = oracle_access_pattern(dist, l, s, m);
        const AccessPattern lattice = compute_access_pattern(dist, l, s, m);
        ASSERT_EQ(lattice, truth) << "lattice p=" << p << " k=" << k << " s=" << s
                                  << " l=" << l << " m=" << m;
        const AccessPattern sorted = chatterjee_access_pattern(dist, l, s, m);
        ASSERT_EQ(sorted, truth) << "chatterjee p=" << p << " k=" << k << " s=" << s
                                 << " l=" << l << " m=" << m;
        if (hiranandani_applicable(dist, s)) {
          const AccessPattern hira = hiranandani_access_pattern(dist, l, s, m);
          ASSERT_EQ(hira, truth) << "hiranandani p=" << p << " k=" << k << " s=" << s
                                 << " l=" << l << " m=" << m;
        }
      }
    }
  }
}

TEST_P(AccessPatternProperty, RadixAndComparisonSortsAgree) {
  const auto [p, k] = GetParam();
  const BlockCyclic dist(p, k);
  for (i64 s : {1L, 7L, k + 1, p * k - 1, p * k + 1}) {
    if (s < 1) continue;
    for (i64 m = 0; m < p; ++m) {
      EXPECT_EQ(chatterjee_access_pattern(dist, 0, s, m, SortKind::kComparison),
                chatterjee_access_pattern(dist, 0, s, m, SortKind::kRadix))
          << p << " " << k << " " << s << " " << m;
    }
  }
}

TEST_P(AccessPatternProperty, Theorem3StepsOnly) {
  // Every gap in every table equals the memory gap of R, -L, or R-L.
  const auto [p, k] = GetParam();
  const BlockCyclic dist(p, k);
  for (i64 s = 1; s <= 2 * p * k; s += 3) {
    const auto basis = select_rl_basis(p, k, s);
    if (!basis) continue;
    const i64 gr = basis->gap_r(k);
    const i64 gl = basis->gap_minus_l(k);
    const i64 grl = basis->gap_r_minus_l(k);
    for (i64 m = 0; m < p; ++m) {
      const AccessPattern pat = compute_access_pattern(dist, 0, s, m);
      if (pat.length <= 1) continue;
      for (const i64 g : pat.gaps)
        EXPECT_TRUE(g == gr || g == gl || g == grl)
            << "gap " << g << " not in {" << gr << "," << gl << "," << grl << "} p=" << p
            << " k=" << k << " s=" << s << " m=" << m;
    }
  }
}

TEST_P(AccessPatternProperty, TableDrivenWalkMatchesIteratorWalk) {
  const auto [p, k] = GetParam();
  const BlockCyclic dist(p, k);
  for (i64 s : {2L, 9L, k + 1, 2 * k + 5}) {
    for (i64 m = 0; m < p; ++m) {
      const AccessPattern pat = compute_access_pattern(dist, 3, s, m);
      LocalAccessIterator it(dist, 3, s, m);
      if (pat.empty()) {
        EXPECT_TRUE(it.done());
        continue;
      }
      ASSERT_FALSE(it.done());
      i64 local = pat.start_local;
      EXPECT_EQ(it.local(), local);
      for (i64 step = 0; step < 3 * pat.length; ++step) {
        const i64 gap = pat.gaps[static_cast<std::size_t>(step % pat.length)];
        EXPECT_EQ(it.peek_gap(), gap) << "step " << step;
        it.advance();
        local += gap;
        ASSERT_EQ(it.local(), local) << p << " " << k << " s=" << s << " m=" << m
                                     << " step=" << step;
      }
    }
  }
}

TEST_P(AccessPatternProperty, CoprimeTablesAreCyclicShifts) {
  // Section 6.1 / Chatterjee et al.: when gcd(s, pk) = 1, the processors'
  // AM sequences are cyclic shifts of one another — the basis for the
  // compute-once-shift-per-processor reuse strategy (Ablation D2).
  const auto [p, k] = GetParam();
  const BlockCyclic dist(p, k);
  for (i64 s = 1; s <= 2 * p * k; s += 3) {
    if (gcd_i64(s, p * k) != 1) continue;
    const AccessPattern base = compute_access_pattern(dist, 0, s, 0);
    if (base.length <= 1) continue;
    for (i64 m = 1; m < p; ++m) {
      const AccessPattern pat = compute_access_pattern(dist, 0, s, m);
      ASSERT_EQ(pat.length, base.length) << p << " " << k << " " << s << " " << m;
      // Find the rotation offset; doubling the base makes the search easy.
      std::vector<i64> doubled(base.gaps);
      doubled.insert(doubled.end(), base.gaps.begin(), base.gaps.end());
      bool found = false;
      for (std::size_t shift = 0; shift < base.gaps.size() && !found; ++shift) {
        found = std::equal(pat.gaps.begin(), pat.gaps.end(), doubled.begin() +
                           static_cast<std::ptrdiff_t>(shift));
      }
      ASSERT_TRUE(found) << "not a cyclic shift: p=" << p << " k=" << k << " s=" << s
                         << " m=" << m;
    }
  }
}

TEST_P(AccessPatternProperty, StartAndLengthIndependentChecks) {
  // length is identical across processors that own anything iff d | k-window
  // structure allows; verify length sums: total on-proc accesses in one
  // global period (pk/d progression steps) equals pk/d.
  const auto [p, k] = GetParam();
  const BlockCyclic dist(p, k);
  for (i64 s = 1; s <= p * k + 2; s += 2) {
    const i64 d = gcd_i64(s, p * k);
    i64 total = 0;
    for (i64 m = 0; m < p; ++m) {
      const auto si = find_start(dist, 0, s, m);
      if (si) total += si->length;
    }
    EXPECT_EQ(total, p * k / d) << p << " " << k << " " << s;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, AccessPatternProperty,
                         ::testing::Values(Config{1, 1}, Config{1, 4}, Config{2, 1},
                                           Config{2, 3}, Config{2, 8}, Config{3, 4},
                                           Config{3, 5}, Config{4, 2}, Config{4, 8},
                                           Config{5, 3}, Config{7, 4}, Config{8, 8},
                                           Config{16, 2}, Config{32, 4}),
                         [](const ::testing::TestParamInfo<Config>& param_info) {
                           std::string name = "p";
                           name += std::to_string(std::get<0>(param_info.param));
                           name += "_k";
                           name += std::to_string(std::get<1>(param_info.param));
                           return name;
                         });

}  // namespace
}  // namespace cyclick
