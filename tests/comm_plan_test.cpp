// Differential tests for the compressed periodic communication plan: the
// compressed representation must execute byte-identically to the legacy
// per-item plan across distributions, strides (including negative and the
// degenerate gcd(s, pk) >= k lattice), alignments, and executors; plus
// plan-cache behavior and the zero-copy transport path under the threaded
// executor.
#include <gtest/gtest.h>

#include <numeric>

#include "cyclick/runtime/section_ops.hpp"

namespace cyclick {
namespace {

std::vector<double> iota_image(i64 n) {
  std::vector<double> v(static_cast<std::size_t>(n));
  std::iota(v.begin(), v.end(), 1.0);
  return v;
}

struct CopyCase {
  const char* name;
  i64 p;
  i64 src_k, dst_k;
  i64 src_n, dst_n;
  AffineAlignment src_al, dst_al;
  RegularSection ssec, dsec;
};

// The differential grid: (p, k, stride, alignment, overlapping src/dst
// distributions), negative strides, and degenerate lattices where
// gcd(s, pk) >= k collapses the access pattern to a fixed step.
std::vector<CopyCase> differential_grid() {
  const AffineAlignment id = AffineAlignment::identity();
  return {
      {"same-dist-unit", 4, 8, 8, 320, 320, id, id, {5, 319, 5}, {1, 63, 1}},
      {"redistribute-strided", 4, 3, 8, 200, 320, id, id, {0, 199, 2}, {10, 307, 3}},
      {"cyclic1-to-block", 5, 1, 7, 300, 300, id, id, {2, 290, 3}, {0, 96, 1}},
      {"negative-src-stride", 2, 4, 4, 50, 50, id, id, {49, 0, -1}, {0, 49, 1}},
      {"negative-both-strides", 3, 5, 2, 120, 120, id, id, {110, 2, -4}, {81, 0, -3}},
      {"degenerate-s-eq-pk", 4, 8, 3, 320, 200, id, id, {0, 319, 32}, {0, 9, 1}},
      {"degenerate-gcd-ge-k", 4, 8, 5, 320, 300, id, id, {4, 319, 16}, {0, 57, 3}},
      {"aligned-src", 2, 4, 4, 40, 40, {2, 1}, id, {0, 39, 1}, {0, 39, 1}},
      {"aligned-both", 2, 4, 4, 40, 40, {2, 3}, {1, 7}, {1, 37, 3}, {0, 24, 2}},
      {"aligned-negative-coeff", 2, 4, 4, 50, 50, {2, 1}, {-1, 60}, {49, 0, -1}, {0, 49, 1}},
      {"overlapping-dists", 6, 4, 4, 240, 240, id, id, {0, 238, 2}, {1, 239, 2}},
      {"single-rank", 1, 3, 5, 64, 64, id, {1, 2}, {0, 62, 2}, {1, 63, 2}},
  };
}

TEST(CommPlanDifferential, CompressedMatchesLegacyByteIdentically) {
  for (const CopyCase& c : differential_grid()) {
    for (const auto mode :
         {SpmdExecutor::Mode::kSequential, SpmdExecutor::Mode::kThreads}) {
      const SpmdExecutor exec(c.p, mode);
      DistributedArray<double> src(BlockCyclic(c.p, c.src_k), c.src_n, c.src_al);
      src.scatter(iota_image(c.src_n));
      DistributedArray<double> d_legacy(BlockCyclic(c.p, c.dst_k), c.dst_n, c.dst_al);
      DistributedArray<double> d_fast(BlockCyclic(c.p, c.dst_k), c.dst_n, c.dst_al);

      const LegacyCommPlan legacy = build_legacy_copy_plan(src, c.ssec, d_legacy, c.dsec, exec);
      const CommPlan fast = build_copy_plan(src, c.ssec, d_fast, c.dsec, exec);

      // Channel populations and precomputed statistics must agree.
      for (i64 m = 0; m < c.p; ++m)
        for (i64 q = 0; q < c.p; ++q)
          ASSERT_EQ(static_cast<i64>(legacy.items(m, q).size()), fast.channel_size(m, q))
              << c.name << " channel (" << m << "," << q << ")";
      EXPECT_EQ(legacy.message_count(), fast.message_count()) << c.name;
      EXPECT_EQ(legacy.remote_elements(), fast.remote_elements()) << c.name;
      EXPECT_EQ(fast.total_elements(), c.ssec.size()) << c.name;

      execute_legacy_copy_plan(legacy, src, d_legacy, exec);
      execute_copy_plan(fast, src, d_fast, exec);
      EXPECT_EQ(d_legacy.gather(), d_fast.gather()) << c.name;

      // A second execution must replay identically (arena reuse).
      execute_copy_plan(fast, src, d_fast, exec);
      EXPECT_EQ(d_legacy.gather(), d_fast.gather()) << c.name << " (replayed)";

      // And both must agree with the sequential reference semantics.
      const auto src_image = src.gather();
      const auto out = d_fast.gather();
      for (i64 t = 0; t < c.ssec.size(); ++t)
        ASSERT_EQ(out[static_cast<std::size_t>(c.dsec.element(t))],
                  src_image[static_cast<std::size_t>(c.ssec.element(t))])
            << c.name << " t=" << t;
    }
  }
}

TEST(CommPlanDifferential, CompressedPlanIsSmallOnLargeSections) {
  const i64 p = 8, n = 20'000;
  const SpmdExecutor exec(p);
  DistributedArray<double> src(BlockCyclic(p, 3), 2 * n + 10);
  DistributedArray<double> dst(BlockCyclic(p, 8), 3 * n + 20);
  const RegularSection ssec{0, 2 * n - 1, 2};
  const RegularSection dsec{10, 10 + 3 * (n - 1), 3};
  const LegacyCommPlan legacy = build_legacy_copy_plan(src, ssec, dst, dsec, exec);
  const CommPlan fast = build_copy_plan(src, ssec, dst, dsec, exec);
  // O(p^2 + periods) vs O(|section|): at this size the compressed plan
  // must be at least an order of magnitude smaller.
  EXPECT_LT(fast.plan_bytes() * 10, legacy.plan_bytes());
}

TEST(CommPlanDifferential, SelfCopyWithinOneArrayIsPhaseSafe) {
  // src and dst are the *same array* with overlapping sections: the pack
  // phase must observe the pre-copy state for every element.
  const SpmdExecutor exec(3);
  DistributedArray<double> a(BlockCyclic(3, 4), 100);
  a.scatter(iota_image(100));
  const auto before = a.gather();
  const RegularSection ssec{0, 89, 1};
  const RegularSection dsec{10, 99, 1};
  const CommPlan plan = build_copy_plan(a, ssec, a, dsec, exec);
  execute_copy_plan(plan, a, a, exec);
  const auto after = a.gather();
  for (i64 t = 0; t < ssec.size(); ++t)
    ASSERT_EQ(after[static_cast<std::size_t>(dsec.element(t))],
              before[static_cast<std::size_t>(ssec.element(t))])
        << t;
}

TEST(CommPlanTransport, ThreadedExecutorBlockingRecv) {
  // Mode::kThreads exercises the blocking Transport::recv path: receivers
  // may post their recv before the matching send completes.
  const SpmdExecutor exec(4, SpmdExecutor::Mode::kThreads);
  InProcessTransport tr(4);
  DistributedArray<double> src(BlockCyclic(4, 3), 200);
  src.scatter(iota_image(200));
  DistributedArray<double> d_direct(BlockCyclic(4, 8), 320);
  DistributedArray<double> d_wire(BlockCyclic(4, 8), 320);
  const RegularSection ssec{0, 199, 2};
  const RegularSection dsec{10, 307, 3};
  const CommPlan plan = build_copy_plan(src, ssec, d_direct, dsec, exec);
  execute_copy_plan(plan, src, d_direct, exec);
  execute_copy_plan_over(plan, src, d_wire, exec, tr);
  EXPECT_EQ(d_direct.gather(), d_wire.gather());
  EXPECT_EQ(tr.in_flight(), 0);
  // Replay over the wire a second time — plans are reusable on both paths.
  execute_copy_plan_over(plan, src, d_wire, exec, tr);
  EXPECT_EQ(d_direct.gather(), d_wire.gather());
  EXPECT_EQ(tr.in_flight(), 0);
}

TEST(PlanCache, HitsMissesAndEviction) {
  const SpmdExecutor exec(4);
  DistributedArray<double> a(BlockCyclic(4, 3), 200), b(BlockCyclic(4, 8), 320);
  const RegularSection s1{0, 199, 2}, d1{10, 307, 3};
  const RegularSection s2{0, 99, 1}, d2{0, 99, 1};

  PlanCache cache(1);
  const auto p1 = cached_copy_plan(a, s1, b, d1, exec, cache);
  auto st = cache.stats();
  EXPECT_EQ(st.misses, 1);
  EXPECT_EQ(st.hits, 0);
  EXPECT_EQ(st.size, 1u);

  const auto p1_again = cached_copy_plan(a, s1, b, d1, exec, cache);
  st = cache.stats();
  EXPECT_EQ(st.hits, 1);
  EXPECT_EQ(p1.get(), p1_again.get());  // shared immutable plan

  // Capacity 1: a different shape evicts the first entry.
  const auto p2 = cached_copy_plan(a, s2, b, d2, exec, cache);
  st = cache.stats();
  EXPECT_EQ(st.misses, 2);
  EXPECT_EQ(st.evictions, 1);
  EXPECT_EQ(st.size, 1u);

  // The evicted plan stays usable through its shared_ptr.
  DistributedArray<double> out(BlockCyclic(4, 8), 320);
  a.scatter(iota_image(200));
  execute_copy_plan(*p1, a, out, exec);
  const auto img = out.gather();
  for (i64 t = 0; t < s1.size(); ++t)
    ASSERT_EQ(img[static_cast<std::size_t>(d1.element(t))],
              static_cast<double>(s1.element(t) + 1));
}

TEST(PlanCache, KeyDiscriminatesMappings) {
  const SpmdExecutor exec(4);
  DistributedArray<double> a(BlockCyclic(4, 3), 200);
  DistributedArray<double> b8(BlockCyclic(4, 8), 320);
  DistributedArray<double> b5(BlockCyclic(4, 5), 320);
  const RegularSection ssec{0, 199, 2}, dsec{10, 307, 3};
  PlanCache cache(8);
  (void)cached_copy_plan(a, ssec, b8, dsec, exec, cache);
  (void)cached_copy_plan(a, ssec, b5, dsec, exec, cache);  // different dst dist
  const auto st = cache.stats();
  EXPECT_EQ(st.misses, 2);
  EXPECT_EQ(st.hits, 0);
  EXPECT_EQ(st.size, 2u);
}

TEST(PlanCache, CopySectionReplaysThroughGlobalCache) {
  // Two identical copy_section calls: the second must be a global-cache
  // hit, and results must stay correct when the data changes between
  // sweeps (plans depend on shapes, not contents).
  const SpmdExecutor exec(4);
  DistributedArray<double> a(BlockCyclic(4, 3), 200), b(BlockCyclic(4, 8), 320);
  const RegularSection ssec{0, 199, 2}, dsec{10, 307, 3};
  const auto before = PlanCache::global().stats();
  for (int sweep = 0; sweep < 3; ++sweep) {
    auto image = iota_image(200);
    for (auto& v : image) v += 100.0 * sweep;
    a.scatter(image);
    copy_section(a, ssec, b, dsec, exec);
    const auto out = b.gather();
    for (i64 t = 0; t < ssec.size(); ++t)
      ASSERT_EQ(out[static_cast<std::size_t>(dsec.element(t))],
                image[static_cast<std::size_t>(ssec.element(t))])
          << sweep << " " << t;
  }
  const auto after = PlanCache::global().stats();
  EXPECT_GE(after.hits - before.hits, 2);
}

TEST(CommPlan, GapPeriodIsCompact) {
  // cyclic(k) with unit stride on both sides: local addresses advance by
  // periodic gaps, so per-channel gap tables must stay tiny regardless of
  // section length.
  const i64 p = 4;
  const SpmdExecutor exec(p);
  DistributedArray<double> a(BlockCyclic(p, 3), 1200), b(BlockCyclic(p, 5), 1200);
  const RegularSection whole{0, 1199, 1};
  const CommPlan plan = build_copy_plan(a, whole, b, whole, exec);
  for (i64 m = 0; m < p; ++m)
    for (i64 q = 0; q < p; ++q) {
      const CommPlan::Channel& ch = plan.channel(m, q);
      if (ch.count <= 1) continue;
      // The delta streams are lattice-periodic: far shorter than the
      // channel population.
      EXPECT_LT(ch.period, ch.count) << "(" << m << "," << q << ")";
      EXPECT_LE(ch.period, 60) << "(" << m << "," << q << ")";
    }
}

}  // namespace
}  // namespace cyclick
