// Tests for the four Figure-8 node-code shapes: all shapes must touch the
// same local addresses in the same order, which must equal the oracle's.
#include <gtest/gtest.h>

#include <vector>

#include "cyclick/baselines/oracle.hpp"
#include "cyclick/codegen/node_loop.hpp"
#include "cyclick/codegen/nodecode.hpp"

namespace cyclick {
namespace {

constexpr CodeShape kAllShapes[] = {CodeShape::kModCycle, CodeShape::kConditionalReset,
                                    CodeShape::kCycleFor, CodeShape::kOffsetIndexed};

// Run one shape and record the local addresses it touched.
std::vector<i64> touched_addresses(CodeShape shape, const BlockCyclic& dist,
                                   const RegularSection& sec, i64 proc) {
  const i64 cap = dist.local_capacity(sec.upper + 1);
  std::vector<int> buffer(static_cast<std::size_t>(cap), 0);
  std::vector<i64> touched;
  run_section_node_code(shape, dist, sec, proc, std::span<int>(buffer), [&](int& slot) {
    touched.push_back(static_cast<i64>(&slot - buffer.data()));
    slot += 1;
  });
  return touched;
}

TEST(NodeCode, AllShapesVisitOracleSequence) {
  for (i64 p : {1, 2, 4}) {
    for (i64 k : {2, 4, 8}) {
      const BlockCyclic dist(p, k);
      for (i64 s : {i64{1}, i64{3}, i64{7}, i64{9}, 2 * k + 1}) {
        const RegularSection sec{2, 2 + 57 * s, s};
        for (i64 m = 0; m < p; ++m) {
          const auto want_seq = oracle_local_sequence(dist, sec, m);
          std::vector<i64> want;
          want.reserve(want_seq.size());
          for (const Access& a : want_seq) want.push_back(a.local);
          for (const CodeShape shape : kAllShapes) {
            EXPECT_EQ(touched_addresses(shape, dist, sec, m), want)
                << code_shape_name(shape) << " p=" << p << " k=" << k << " s=" << s
                << " m=" << m;
          }
        }
      }
    }
  }
}

TEST(NodeCode, ShapesCountAccesses) {
  const BlockCyclic dist(4, 8);
  const RegularSection sec{0, 319, 9};  // 36 elements over 4 procs
  i64 total = 0;
  for (i64 m = 0; m < 4; ++m) {
    std::vector<double> buffer(static_cast<std::size_t>(dist.local_capacity(320)), 0.0);
    total += run_section_node_code(CodeShape::kConditionalReset, dist, sec, m,
                                   std::span<double>(buffer), [](double& x) { x = 100.0; });
  }
  EXPECT_EQ(total, sec.size());
}

TEST(NodeCode, EmptyRangeDoesNothing) {
  std::vector<double> buffer(8, 0.0);
  const AccessPattern empty;
  const OffsetTables tables;
  for (const CodeShape shape : kAllShapes) {
    EXPECT_EQ(run_node_code(shape, std::span<double>(buffer), empty, tables, 7,
                            [](double& x) { x = 1.0; }),
              0)
        << code_shape_name(shape);
  }
  for (const double v : buffer) EXPECT_EQ(v, 0.0);
}

TEST(NodeCode, StartBeyondLastDoesNothing) {
  // A processor whose first access lies beyond the section's last element
  // must perform zero accesses in every shape (guards the 8(c) shape, whose
  // paper version tests bounds only after the first body execution).
  std::vector<double> buffer(64, 0.0);
  AccessPattern pat;
  pat.start_local = 10;
  pat.length = 2;
  pat.gaps = {3, 5};
  OffsetTables tables;
  tables.start_offset = 0;
  tables.delta = {3, 5};
  tables.next_offset = {1, 0};
  for (const CodeShape shape : kAllShapes) {
    EXPECT_EQ(run_node_code(shape, std::span<double>(buffer), pat, tables, 9,
                            [](double& x) { x = 1.0; }),
              0)
        << code_shape_name(shape);
  }
}

TEST(NodeCode, PaperExampleAssignment) {
  // A(4:300:9) = 100.0 on the paper's machine; verify the global image.
  const BlockCyclic dist(4, 8);
  const RegularSection sec{4, 300, 9};
  const i64 n = 320;
  std::vector<std::vector<double>> locals(
      4, std::vector<double>(static_cast<std::size_t>(dist.local_capacity(n)), 0.0));
  for (i64 m = 0; m < 4; ++m)
    run_section_node_code(CodeShape::kOffsetIndexed, dist, sec, m,
                          std::span<double>(locals[static_cast<std::size_t>(m)]),
                          [](double& x) { x = 100.0; });
  for (i64 g = 0; g < n; ++g) {
    const double v =
        locals[static_cast<std::size_t>(dist.owner(g))][static_cast<std::size_t>(
            dist.local_index(g))];
    EXPECT_EQ(v, sec.contains(g) ? 100.0 : 0.0) << g;
  }
}

TEST(NodeCode, TableFreeShapeMatchesOracle) {
  for (i64 p : {2, 4}) {
    for (i64 k : {4, 8}) {
      const BlockCyclic dist(p, k);
      for (i64 s : {3, 9, 17}) {
        const RegularSection sec{1, 1 + 40 * s, s};
        for (i64 m = 0; m < p; ++m) {
          const auto want_seq = oracle_local_sequence(dist, sec, m);
          const i64 cap = dist.local_capacity(sec.upper + 1);
          std::vector<int> buffer(static_cast<std::size_t>(cap), 0);
          std::vector<i64> got;
          const auto lastg = find_last(dist, sec, m);
          const i64 last = lastg ? dist.local_index(*lastg) : -1;
          run_table_free(dist, sec.lower, sec.stride, m, std::span<int>(buffer), last,
                         [&](int& slot) {
                           got.push_back(static_cast<i64>(&slot - buffer.data()));
                         });
          std::vector<i64> want;
          for (const Access& a : want_seq) want.push_back(a.local);
          EXPECT_EQ(got, want) << p << " " << k << " " << s << " " << m;
        }
      }
    }
  }
}

TEST(ForEachLocalAccess, AscendingMatchesOracle) {
  const BlockCyclic dist(4, 8);
  const RegularSection sec{4, 300, 9};
  for (i64 m = 0; m < 4; ++m) {
    const auto want = oracle_local_sequence(dist, sec, m);
    std::vector<Access> got;
    for_each_local_access(dist, sec, m,
                          [&](i64 g, i64 la) { got.push_back({g, la}); });
    EXPECT_EQ(got, want) << m;
  }
}

TEST(ForEachLocalAccess, DescendingMatchesOracle) {
  const BlockCyclic dist(4, 8);
  const RegularSection sec{300, 4, -9};
  for (i64 m = 0; m < 4; ++m) {
    const auto want = oracle_local_sequence(dist, sec, m);
    std::vector<Access> got;
    for_each_local_access(dist, sec, m,
                          [&](i64 g, i64 la) { got.push_back({g, la}); });
    EXPECT_EQ(got, want) << m;
  }
}

}  // namespace
}  // namespace cyclick
