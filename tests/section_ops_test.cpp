// Tests for the SPMD section-operation engine: fills, transforms,
// reductions, copies with communication plans — all verified against
// sequential reference semantics on the gathered global image.
#include <gtest/gtest.h>

#include <numeric>

#include "cyclick/runtime/section_ops.hpp"

namespace cyclick {
namespace {

std::vector<double> iota_image(i64 n) {
  std::vector<double> v(static_cast<std::size_t>(n));
  std::iota(v.begin(), v.end(), 0.0);
  return v;
}

TEST(SectionOps, FillMatchesReference) {
  for (const auto mode : {SpmdExecutor::Mode::kSequential, SpmdExecutor::Mode::kThreads}) {
    const BlockCyclic dist(4, 8);
    const SpmdExecutor exec(4, mode);
    DistributedArray<double> arr(dist, 320);
    arr.scatter(iota_image(320));
    const RegularSection sec{4, 300, 9};
    fill_section(arr, sec, 100.0, exec);

    std::vector<double> want = iota_image(320);
    for (i64 t = 0; t < sec.size(); ++t) want[static_cast<std::size_t>(sec.element(t))] = 100.0;
    EXPECT_EQ(arr.gather(), want);
  }
}

TEST(SectionOps, FillDescendingSection) {
  const BlockCyclic dist(3, 4);
  const SpmdExecutor exec(3);
  DistributedArray<double> arr(dist, 100);
  const RegularSection sec{90, 6, -7};
  fill_section(arr, sec, 5.0, exec);
  const auto image = arr.gather();
  for (i64 g = 0; g < 100; ++g)
    EXPECT_EQ(image[static_cast<std::size_t>(g)], sec.contains(g) ? 5.0 : 0.0) << g;
}

TEST(SectionOps, FillAlignedArray) {
  const BlockCyclic dist(2, 4);
  const SpmdExecutor exec(2);
  DistributedArray<double> arr(dist, 40, AffineAlignment{2, 3});
  const RegularSection sec{1, 37, 3};
  fill_section(arr, sec, 7.0, exec);
  const auto image = arr.gather();
  for (i64 g = 0; g < 40; ++g)
    EXPECT_EQ(image[static_cast<std::size_t>(g)], sec.contains(g) ? 7.0 : 0.0) << g;
}

TEST(SectionOps, TransformMatchesReference) {
  const BlockCyclic dist(4, 2);
  const SpmdExecutor exec(4);
  DistributedArray<double> arr(dist, 64);
  arr.scatter(iota_image(64));
  const RegularSection sec{0, 63, 5};
  transform_section(arr, sec, [](double x) { return 2.0 * x + 1.0; }, exec);
  const auto image = arr.gather();
  for (i64 g = 0; g < 64; ++g) {
    const double want = sec.contains(g) ? 2.0 * static_cast<double>(g) + 1.0
                                        : static_cast<double>(g);
    EXPECT_EQ(image[static_cast<std::size_t>(g)], want) << g;
  }
}

TEST(SectionOps, ReduceSumsSection) {
  const BlockCyclic dist(4, 8);
  const SpmdExecutor exec(4);
  DistributedArray<double> arr(dist, 320);
  arr.scatter(iota_image(320));
  const RegularSection sec{4, 300, 9};
  const double got =
      reduce_section(arr, sec, 0.0, [](double a, double b) { return a + b; }, exec);
  double want = 0.0;
  for (i64 t = 0; t < sec.size(); ++t) want += static_cast<double>(sec.element(t));
  EXPECT_EQ(got, want);
}

TEST(SectionOps, ReduceEmptyOwnershipIsInit) {
  // s = pk from l = 0: only rank 0 owns anything; reduce still works.
  const BlockCyclic dist(4, 8);
  const SpmdExecutor exec(4);
  DistributedArray<double> arr(dist, 320);
  arr.scatter(iota_image(320));
  const RegularSection sec{0, 319, 32};
  const double got =
      reduce_section(arr, sec, 0.0, [](double a, double b) { return a + b; }, exec);
  double want = 0.0;
  for (i64 t = 0; t < sec.size(); ++t) want += static_cast<double>(sec.element(t));
  EXPECT_EQ(got, want);
}

TEST(SectionOps, CopySameDistribution) {
  const BlockCyclic dist(4, 8);
  const SpmdExecutor exec(4);
  DistributedArray<double> a(dist, 320), b(dist, 320);
  a.scatter(iota_image(320));
  // b(1:64:1) = a(5:320:5)
  const RegularSection ssec{5, 319, 5};
  const RegularSection dsec{1, ssec.size(), 1};
  copy_section(a, ssec, b, dsec, exec);
  const auto image = b.gather();
  for (i64 t = 0; t < dsec.size(); ++t)
    EXPECT_EQ(image[static_cast<std::size_t>(dsec.element(t))],
              static_cast<double>(ssec.element(t)))
        << t;
}

TEST(SectionOps, CopyAcrossDifferentBlockSizes) {
  // Source cyclic(3), destination cyclic(8): genuinely redistributes.
  const SpmdExecutor exec(4);
  DistributedArray<double> a(BlockCyclic(4, 3), 200), b(BlockCyclic(4, 8), 320);
  a.scatter(iota_image(200));
  const RegularSection ssec{0, 199, 2};   // 100 elements
  const RegularSection dsec{10, 307, 3};  // 100 elements
  copy_section(a, ssec, b, dsec, exec);
  const auto image = b.gather();
  for (i64 t = 0; t < dsec.size(); ++t)
    EXPECT_EQ(image[static_cast<std::size_t>(dsec.element(t))],
              static_cast<double>(ssec.element(t)))
        << t;
}

TEST(SectionOps, CopyReversesWithOpposedStrides) {
  const SpmdExecutor exec(2);
  DistributedArray<double> a(BlockCyclic(2, 4), 50), b(BlockCyclic(2, 4), 50);
  a.scatter(iota_image(50));
  const RegularSection ssec{49, 0, -1};  // descending source
  const RegularSection dsec{0, 49, 1};
  copy_section(a, ssec, b, dsec, exec);
  const auto image = b.gather();
  for (i64 g = 0; g < 50; ++g)
    EXPECT_EQ(image[static_cast<std::size_t>(g)], static_cast<double>(49 - g)) << g;
}

TEST(SectionOps, CommPlanAccountsEveryElement) {
  const SpmdExecutor exec(4);
  DistributedArray<double> a(BlockCyclic(4, 3), 200), b(BlockCyclic(4, 8), 320);
  const RegularSection ssec{0, 199, 2};
  const RegularSection dsec{10, 307, 3};
  const CommPlan plan = build_copy_plan(a, ssec, b, dsec, exec);
  i64 total = 0;
  for (i64 m = 0; m < 4; ++m)
    for (i64 q = 0; q < 4; ++q) total += plan.channel_size(m, q);
  EXPECT_EQ(total, ssec.size());
  EXPECT_EQ(plan.total_elements(), ssec.size());
  EXPECT_EQ(plan.remote_elements() <= total, true);
  EXPECT_GE(plan.message_count(), 1);  // redistribution must communicate
}

TEST(SectionOps, IdenticalSectionsNeedNoCommunication) {
  const SpmdExecutor exec(4);
  DistributedArray<double> a(BlockCyclic(4, 8), 320), b(BlockCyclic(4, 8), 320);
  const RegularSection sec{4, 300, 9};
  const CommPlan plan = build_copy_plan(a, sec, b, sec, exec);
  EXPECT_EQ(plan.message_count(), 0);
  EXPECT_EQ(plan.remote_elements(), 0);
}

TEST(SectionOps, PlanReuseAcrossExecutions) {
  const SpmdExecutor exec(2);
  DistributedArray<double> a(BlockCyclic(2, 4), 60), b(BlockCyclic(2, 4), 60);
  const RegularSection ssec{0, 58, 2};
  const RegularSection dsec{1, 59, 2};
  const CommPlan plan = build_copy_plan(a, ssec, b, dsec, exec);
  for (int round = 0; round < 3; ++round) {
    auto image = iota_image(60);
    for (auto& v : image) v += round * 100;
    a.scatter(image);
    execute_copy_plan(plan, a, b, exec);
    const auto out = b.gather();
    for (i64 t = 0; t < dsec.size(); ++t)
      EXPECT_EQ(out[static_cast<std::size_t>(dsec.element(t))],
                image[static_cast<std::size_t>(ssec.element(t))])
          << round << " " << t;
  }
}

TEST(SectionOps, ZipCombinesTwoSections) {
  const SpmdExecutor exec(4);
  const BlockCyclic dist(4, 8);
  DistributedArray<double> dst(dist, 320), a(dist, 320), b(dist, 320);
  a.scatter(iota_image(320));
  std::vector<double> bi(320);
  for (std::size_t i = 0; i < 320; ++i) bi[i] = 1000.0 - static_cast<double>(i);
  b.scatter(bi);
  // dst(0:99:1) = a(0:198:2) + b(100:1:-1)
  const RegularSection dsec{0, 99, 1};
  const RegularSection asec{0, 198, 2};
  const RegularSection bsec{100, 1, -1};
  zip_sections(dst, dsec, a, asec, b, bsec, [](double x, double y) { return x + y; }, exec);
  const auto image = dst.gather();
  for (i64 t = 0; t < 100; ++t) {
    const double want = static_cast<double>(asec.element(t)) +
                        (1000.0 - static_cast<double>(bsec.element(t)));
    EXPECT_EQ(image[static_cast<std::size_t>(t)], want) << t;
  }
}

TEST(SectionOps, CopyBetweenAlignedArrays) {
  const SpmdExecutor exec(2);
  DistributedArray<double> a(BlockCyclic(2, 4), 40, AffineAlignment{2, 1});
  DistributedArray<double> b(BlockCyclic(2, 4), 40, AffineAlignment{1, 7});
  a.scatter(iota_image(40));
  const RegularSection ssec{0, 39, 1};
  const RegularSection dsec{0, 39, 1};
  copy_section(a, ssec, b, dsec, exec);
  EXPECT_EQ(b.gather(), iota_image(40));
}


TEST(SectionOps, SymmetricCopyMatchesPlanCopy) {
  const SpmdExecutor exec(4);
  DistributedArray<double> a(BlockCyclic(4, 3), 200);
  DistributedArray<double> b1(BlockCyclic(4, 8), 320), b2(BlockCyclic(4, 8), 320);
  auto image = iota_image(200);
  a.scatter(image);
  const RegularSection ssec{0, 199, 2};
  const RegularSection dsec{10, 307, 3};
  copy_section(a, ssec, b1, dsec, exec);
  symmetric_copy_section(a, ssec, b2, dsec, exec);
  EXPECT_EQ(b1.gather(), b2.gather());
}

TEST(SectionOps, SymmetricCopyWithReversalAndAlignment) {
  const SpmdExecutor exec(2);
  DistributedArray<double> a(BlockCyclic(2, 4), 50, AffineAlignment{2, 1});
  DistributedArray<double> b(BlockCyclic(2, 4), 50, AffineAlignment{-1, 60});
  a.scatter(iota_image(50));
  const RegularSection ssec{49, 0, -1};
  const RegularSection dsec{0, 49, 1};
  symmetric_copy_section(a, ssec, b, dsec, exec);
  const auto out = b.gather();
  for (i64 g = 0; g < 50; ++g)
    EXPECT_EQ(out[static_cast<std::size_t>(g)], static_cast<double>(49 - g)) << g;
}

TEST(SectionOps, SymmetricCopyThreadedMatchesSequential) {
  DistributedArray<double> a(BlockCyclic(4, 5), 300);
  a.scatter(iota_image(300));
  const RegularSection ssec{3, 297, 7};
  const RegularSection dsec{1, 295, 7};
  DistributedArray<double> bs(BlockCyclic(4, 2), 300), bt(BlockCyclic(4, 2), 300);
  symmetric_copy_section(a, ssec, bs, dsec, SpmdExecutor(4, SpmdExecutor::Mode::kSequential));
  symmetric_copy_section(a, ssec, bt, dsec, SpmdExecutor(4, SpmdExecutor::Mode::kThreads));
  EXPECT_EQ(bs.gather(), bt.gather());
}

TEST(SectionOps, SizeMismatchRejected) {
  const SpmdExecutor exec(2);
  DistributedArray<double> a(BlockCyclic(2, 4), 60), b(BlockCyclic(2, 4), 60);
  EXPECT_THROW(copy_section(a, RegularSection{0, 10, 1}, b, RegularSection{0, 20, 1}, exec),
               precondition_error);
}

}  // namespace
}  // namespace cyclick
