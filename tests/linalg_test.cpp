// Tests for the block-scattered linear algebra layer: DistMatrix structure,
// GEMV, SUMMA, transpose, norms — all against serial references.
#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "cyclick/linalg/blas.hpp"

namespace cyclick {
namespace {

std::vector<double> random_matrix(i64 rows, i64 cols, u64 seed) {
  std::mt19937_64 rng(seed);
  std::vector<double> m(static_cast<std::size_t>(rows * cols));
  for (auto& v : m) v = static_cast<double>(rng() % 19) - 9.0;
  return m;
}

TEST(DistMatrix, DenseRoundTrip) {
  DistMatrix<double> a(12, 15, 2, 3, 2, 3);
  const auto image = random_matrix(12, 15, 1);
  a.from_dense(image);
  EXPECT_EQ(a.to_dense(), image);
  EXPECT_EQ(a.get(3, 7), image[static_cast<std::size_t>(3 * 15 + 7)]);
}

TEST(DistMatrix, OwnedRowsPartitionAndMatchOwners) {
  DistMatrix<double> a(23, 17, 3, 2, 2, 3);
  std::vector<int> seen(23, 0);
  for (i64 gr = 0; gr < 2; ++gr) {
    for (const i64 i : a.owned_rows(gr)) {
      EXPECT_EQ(a.row_dist().owner(i), gr);
      ++seen[static_cast<std::size_t>(i)];
    }
  }
  for (const int c : seen) EXPECT_EQ(c, 1);
  std::vector<int> seen_cols(17, 0);
  for (i64 gc = 0; gc < 3; ++gc)
    for (const i64 j : a.owned_cols(gc)) ++seen_cols[static_cast<std::size_t>(j)];
  for (const int c : seen_cols) EXPECT_EQ(c, 1);
}

TEST(Gemv, MatchesSerial) {
  const i64 rows = 18, cols = 22;
  DistMatrix<double> a(rows, cols, 2, 3, 2, 3);
  const auto image = random_matrix(rows, cols, 2);
  a.from_dense(image);
  std::vector<double> x(static_cast<std::size_t>(cols));
  for (std::size_t j = 0; j < x.size(); ++j) x[j] = static_cast<double>(j % 7) - 3.0;

  const SpmdExecutor exec(6, SpmdExecutor::Mode::kThreads);
  InProcessTransport tr(6);
  const std::vector<double> y = gemv<double>(a, x, exec, tr);

  for (i64 i = 0; i < rows; ++i) {
    double want = 0.0;
    for (i64 j = 0; j < cols; ++j)
      want += image[static_cast<std::size_t>(i * cols + j)] * x[static_cast<std::size_t>(j)];
    EXPECT_EQ(y[static_cast<std::size_t>(i)], want) << i;
  }
  EXPECT_EQ(tr.in_flight(), 0);
}

TEST(Summa, MatchesSerialGemm) {
  const i64 n = 20, k = 14, m = 17;
  // Conformal distributions: A rows/C rows cyclic(3) on 2 grid rows; B
  // cols/C cols cyclic(2) on 3 grid cols; A cols/B rows cyclic(4).
  DistMatrix<double> a(n, k, 3, 4, 2, 3);
  DistMatrix<double> b(k, m, 4, 2, 2, 3);
  DistMatrix<double> c(n, m, 3, 2, 2, 3);
  const auto ai = random_matrix(n, k, 3);
  const auto bi = random_matrix(k, m, 4);
  a.from_dense(ai);
  b.from_dense(bi);

  const SpmdExecutor exec(6, SpmdExecutor::Mode::kThreads);
  InProcessTransport tr(6);
  summa(a, b, c, exec, tr);

  const auto ci = c.to_dense();
  for (i64 i = 0; i < n; ++i)
    for (i64 j = 0; j < m; ++j) {
      double want = 0.0;
      for (i64 t = 0; t < k; ++t)
        want += ai[static_cast<std::size_t>(i * k + t)] *
                bi[static_cast<std::size_t>(t * m + j)];
      ASSERT_EQ(ci[static_cast<std::size_t>(i * m + j)], want) << i << "," << j;
    }
  EXPECT_EQ(tr.in_flight(), 0);
}

TEST(Summa, WrongDistributionsRejected) {
  DistMatrix<double> a(8, 8, 2, 2, 2, 2);
  DistMatrix<double> b(8, 8, 2, 2, 2, 2);
  DistMatrix<double> c(8, 8, 3, 2, 2, 2);  // C rows not conformal with A rows
  const SpmdExecutor exec(4, SpmdExecutor::Mode::kThreads);
  InProcessTransport tr(4);
  EXPECT_THROW(summa(a, b, c, exec, tr), precondition_error);
  // Sequential executor rejected (collectives would deadlock).
  const SpmdExecutor seq(4, SpmdExecutor::Mode::kSequential);
  DistMatrix<double> c2(8, 8, 2, 2, 2, 2);
  EXPECT_THROW(summa(a, b, c2, seq, tr), precondition_error);
}

TEST(Transpose, MatchesSerial) {
  const i64 rows = 13, cols = 19;
  DistMatrix<double> a(rows, cols, 2, 3, 2, 3);
  DistMatrix<double> at(cols, rows, 3, 2, 2, 3);
  const auto image = random_matrix(rows, cols, 5);
  a.from_dense(image);
  const SpmdExecutor exec(6);
  transpose(a, at, exec);
  for (i64 i = 0; i < rows; ++i)
    for (i64 j = 0; j < cols; ++j)
      ASSERT_EQ(at.get(j, i), image[static_cast<std::size_t>(i * cols + j)]) << i << "," << j;
}

TEST(Transpose, DoubleTransposeIsIdentity) {
  DistMatrix<double> a(9, 11, 2, 2, 2, 2), at(11, 9, 3, 1, 2, 2), att(9, 11, 1, 4, 2, 2);
  const auto image = random_matrix(9, 11, 6);
  a.from_dense(image);
  const SpmdExecutor exec(4);
  transpose(a, at, exec);
  transpose(at, att, exec);
  EXPECT_EQ(att.to_dense(), image);
}

TEST(FrobeniusNorm, MatchesSerial) {
  DistMatrix<double> a(10, 10, 3, 3, 2, 2);
  const auto image = random_matrix(10, 10, 7);
  a.from_dense(image);
  const SpmdExecutor exec(4);
  double want = 0.0;
  for (const double v : image) want += v * v;
  EXPECT_DOUBLE_EQ(frobenius_norm(a, exec), std::sqrt(want));
}

TEST(LuFactor, ReconstructsTheMatrix) {
  const i64 n = 16;
  // Diagonally dominant => no pivoting needed.
  auto image = random_matrix(n, n, 11);
  for (i64 i = 0; i < n; ++i) {
    double rowsum = 0.0;
    for (i64 j = 0; j < n; ++j) rowsum += std::abs(image[static_cast<std::size_t>(i * n + j)]);
    image[static_cast<std::size_t>(i * n + i)] = rowsum + 1.0;
  }
  DistMatrix<double> a(n, n, 3, 2, 2, 3);
  a.from_dense(image);
  const SpmdExecutor exec(6, SpmdExecutor::Mode::kThreads);
  InProcessTransport tr(6);
  lu_factor(a, exec, tr);
  EXPECT_EQ(tr.in_flight(), 0);

  // Reconstruct L * U from the packed factors and compare.
  const auto f = a.to_dense();
  double max_err = 0.0;
  for (i64 i = 0; i < n; ++i)
    for (i64 j = 0; j < n; ++j) {
      double acc = 0.0;
      const i64 kmax = i < j ? i : j;
      for (i64 t = 0; t <= kmax; ++t) {
        const double lit = (t == i) ? 1.0 : (t < i ? f[static_cast<std::size_t>(i * n + t)] : 0.0);
        const double utj = (t <= j) ? f[static_cast<std::size_t>(t * n + j)] : 0.0;
        acc += lit * utj;
      }
      max_err = std::max(max_err,
                         std::abs(acc - image[static_cast<std::size_t>(i * n + j)]));
    }
  EXPECT_LT(max_err, 1e-9);
}

TEST(LuFactor, SolvesASystemViaForwardBackSubstitution) {
  const i64 n = 12;
  auto image = random_matrix(n, n, 12);
  for (i64 i = 0; i < n; ++i) {
    double rowsum = 0.0;
    for (i64 j = 0; j < n; ++j) rowsum += std::abs(image[static_cast<std::size_t>(i * n + j)]);
    image[static_cast<std::size_t>(i * n + i)] = rowsum + 1.0;
  }
  std::vector<double> x_true(static_cast<std::size_t>(n));
  for (std::size_t i = 0; i < x_true.size(); ++i) x_true[i] = static_cast<double>(i) - 5.5;
  std::vector<double> b(static_cast<std::size_t>(n), 0.0);
  for (i64 i = 0; i < n; ++i)
    for (i64 j = 0; j < n; ++j)
      b[static_cast<std::size_t>(i)] +=
          image[static_cast<std::size_t>(i * n + j)] * x_true[static_cast<std::size_t>(j)];

  DistMatrix<double> a(n, n, 2, 2, 2, 2);
  a.from_dense(image);
  const SpmdExecutor exec(4, SpmdExecutor::Mode::kThreads);
  InProcessTransport tr(4);
  lu_factor(a, exec, tr);
  const auto f = a.to_dense();

  // Serial triangular solves on the gathered factors.
  std::vector<double> y = b;
  for (i64 i = 0; i < n; ++i)
    for (i64 j = 0; j < i; ++j)
      y[static_cast<std::size_t>(i)] -=
          f[static_cast<std::size_t>(i * n + j)] * y[static_cast<std::size_t>(j)];
  std::vector<double> x = y;
  for (i64 i = n - 1; i >= 0; --i) {
    for (i64 j = i + 1; j < n; ++j)
      x[static_cast<std::size_t>(i)] -=
          f[static_cast<std::size_t>(i * n + j)] * x[static_cast<std::size_t>(j)];
    x[static_cast<std::size_t>(i)] /= f[static_cast<std::size_t>(i * n + i)];
  }
  for (i64 i = 0; i < n; ++i)
    EXPECT_NEAR(x[static_cast<std::size_t>(i)], x_true[static_cast<std::size_t>(i)], 1e-9)
        << i;
}

TEST(Summa, IdentityTimesMatrix) {
  const i64 n = 12;
  DistMatrix<double> eye(n, n, 2, 2, 2, 2), b(n, n, 2, 3, 2, 2), c(n, n, 2, 3, 2, 2);
  std::vector<double> id(static_cast<std::size_t>(n * n), 0.0);
  for (i64 i = 0; i < n; ++i) id[static_cast<std::size_t>(i * n + i)] = 1.0;
  eye.from_dense(id);
  const auto bi = random_matrix(n, n, 8);
  b.from_dense(bi);
  const SpmdExecutor exec(4, SpmdExecutor::Mode::kThreads);
  InProcessTransport tr(4);
  summa(eye, b, c, exec, tr);
  EXPECT_EQ(c.to_dense(), bi);
}

}  // namespace
}  // namespace cyclick
