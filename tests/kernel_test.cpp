// Differential tests for the pattern-specialized kernel layer: every
// kernel class (run-copy, strided, periodic-gap) fed by every AddressEngine
// strategy, across element sizes 1/4/8/16, misaligned (element-offset)
// base pointers, short sections (fewer elements than one period), tile-tail
// remainders, and negative strides. The oracle is the SectionPlan's own
// per-element walk. The same grid runs in SIMD and -DCYCLICK_FORCE_SCALAR
// builds (CI carries a force-scalar leg).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "cyclick/core/engine.hpp"
#include "cyclick/core/kernels.hpp"

namespace cyclick {
namespace {

struct Wide {
  std::uint64_t a, b;
  friend bool operator==(const Wide&, const Wide&) = default;
};
static_assert(sizeof(Wide) == 16 && kdetail::lowerable_v<Wide>);

template <typename T>
T value_at(i64 i) {
  if constexpr (std::is_same_v<T, Wide>) {
    return Wide{static_cast<std::uint64_t>(i), static_cast<std::uint64_t>(i) * 3u + 1u};
  } else {
    return static_cast<T>(static_cast<std::uint64_t>(i));
  }
}

/// Ascending local addresses the kernel must replay: the plan's traversal
/// order, reversed for descending sections.
std::vector<i64> ascending_locals(const SectionPlan& plan, i64 stride) {
  std::vector<i64> out;
  plan.for_each([&](i64, i64 la) { out.push_back(la); });
  if (stride < 0) std::reverse(out.begin(), out.end());
  return out;
}

/// Run every typed kernel entry point against the oracle address list with
/// the element base shifted by `shift` whole elements (exercises unaligned
/// vector loads/stores without ever breaking element alignment).
template <typename T>
void check_typed(const KernelPlan& kp, const std::vector<i64>& locals, i64 shift) {
  const i64 high = locals.empty() ? 0 : locals.back();
  const auto len = static_cast<std::size_t>(high + 1 + shift);
  const auto n = locals.size();

  std::vector<T> backing(len);
  for (std::size_t i = 0; i < len; ++i) backing[i] = value_at<T>(static_cast<i64>(i));
  T* base = backing.data() + shift;

  // gather: densified elements in ascending address order.
  std::vector<T> got(n), want(n);
  for (std::size_t i = 0; i < n; ++i)
    want[i] = base[static_cast<std::size_t>(locals[i])];
  ASSERT_EQ(kernel_gather(kp, base, got.data()), static_cast<i64>(n));
  EXPECT_EQ(got, want);

  // scatter: the mirror writes land exactly on the oracle addresses.
  std::vector<T> in(n);
  for (std::size_t i = 0; i < n; ++i) in[i] = value_at<T>(static_cast<i64>(i) + 1'000'000);
  std::vector<T> scattered = backing, expect = backing;
  ASSERT_EQ(kernel_scatter(kp, scattered.data() + shift, in.data()), static_cast<i64>(n));
  for (std::size_t i = 0; i < n; ++i)
    expect[static_cast<std::size_t>(locals[i] + shift)] = in[i];
  EXPECT_EQ(scattered, expect);

  // fill + copy_same touch exactly the oracle addresses.
  std::vector<T> filled = backing;
  expect = backing;
  const T v = value_at<T>(42);
  ASSERT_EQ(kernel_fill(kp, filled.data() + shift, v), static_cast<i64>(n));
  for (const i64 la : locals) expect[static_cast<std::size_t>(la + shift)] = v;
  EXPECT_EQ(filled, expect);

  std::vector<T> copied(len, value_at<T>(7));
  expect = copied;
  ASSERT_EQ(kernel_copy_same(kp, base, copied.data() + shift), static_cast<i64>(n));
  for (const i64 la : locals) expect[static_cast<std::size_t>(la + shift)] = base[static_cast<std::size_t>(la)];
  EXPECT_EQ(copied, expect);
}

/// The numeric-only dot kernel, checked in the same ascending order the
/// kernel accumulates in (bitwise-reproducible for these integer-valued
/// doubles).
void check_dot(const KernelPlan& kp, const std::vector<i64>& locals) {
  const i64 high = locals.empty() ? 0 : locals.back();
  const auto len = static_cast<std::size_t>(high + 1);
  std::vector<double> a(len), b(len);
  for (std::size_t i = 0; i < len; ++i) {
    a[i] = static_cast<double>(i % 97);
    b[i] = static_cast<double>(i % 31) - 13.0;
  }
  double want = 0.0;
  for (const i64 la : locals) {
    const auto i = static_cast<std::size_t>(la);
    want += a[i] * b[i];
  }
  EXPECT_EQ(kernel_dot(kp, a.data(), b.data()), want);
}

struct Shape {
  i64 p, k, s;
};

// Every strategy class, both directions where the class admits them.
const Shape kShapes[] = {
    {1, 64, 3},   {1, 64, -3},  // trivial-local (strided lowering)
    {1, 8, 1},                  // trivial-local, |s| == 1 (run-copy)
    {8, 4, 1},    {8, 4, -1},   // dense-runs
    {4, 1, 3},                  // pure-cyclic (degenerate strided)
    {4, 8, 16},                 // fixed-step (degenerate strided)
    {4, 8, 33},   {4, 8, -33},  // hiranandani feed of periodic-gap
    {4, 8, 13},   {4, 8, 9},    // general-lattice feed of periodic-gap
};

TEST(Kernels, DifferentialGridAgainstPlanWalk) {
  // Counts cover empty, shorter than one period, tile tails (the tile
  // target is 64), and multi-tile runs.
  for (const Shape& sh : kShapes) {
    const BlockCyclic dist(sh.p, sh.k);
    for (const i64 count : {0, 2, 7, 40, 203}) {
      for (const i64 lower : {0, 5, -37}) {
        const i64 span = (count - 1) * sh.s;
        const RegularSection sec = sh.s > 0
                                       ? RegularSection{lower, lower + span, sh.s}
                                       : RegularSection{lower + span, lower, sh.s};
        if (count == 0) continue;
        for (i64 m = 0; m < sh.p; ++m) {
          SCOPED_TRACE(::testing::Message()
                       << "p=" << sh.p << " k=" << sh.k << " s=" << sh.s << " count="
                       << count << " lower=" << lower << " m=" << m);
          const SectionPlan plan = AddressEngine::global().plan(dist, sec, m);
          const KernelPlan kp = compile_kernel(plan);
          EXPECT_EQ(kp.bulk(), !plan.empty());
          const std::vector<i64> locals = ascending_locals(plan, sh.s);
          ASSERT_EQ(kp.count(), static_cast<i64>(locals.size()));
          if (!kp.bulk()) continue;
          EXPECT_EQ(kp.cls(), kernel_class_for(dist, sh.s));

          // Address replay matches the oracle exactly.
          std::vector<i64> replay;
          kernel_for_each_local(kp, [&](i64 la) { replay.push_back(la); });
          ASSERT_EQ(replay, locals);

          // Typed buffer kernels need in-bounds (nonnegative) local
          // addresses, the contract every runtime consumer REQUIREs; the
          // negative-lower rows still exercise the address replay above.
          if (locals.front() < 0) continue;
          for (const i64 shift : {0, 1, 3}) {
            check_typed<std::uint8_t>(kp, locals, shift);
            check_typed<std::uint32_t>(kp, locals, shift);
            check_typed<double>(kp, locals, shift);
            check_typed<Wide>(kp, locals, shift);
          }
          check_dot(kp, locals);
        }
      }
    }
  }
}

TEST(Kernels, EmptyPlanCompilesToScalar) {
  const BlockCyclic dist(4, 8);
  // Processor 3 owns nothing of a one-element section on processor 0.
  const SectionPlan plan = AddressEngine::global().plan(dist, {0, 0, 1}, 3);
  ASSERT_TRUE(plan.empty());
  const KernelPlan kp = compile_kernel(plan);
  EXPECT_EQ(kp.cls(), KernelClass::kScalar);
  EXPECT_FALSE(kp.bulk());
  EXPECT_EQ(kernel_for_each_local(kp, [](i64) { FAIL(); }), 0);
}

TEST(Kernels, ClassNamesAndClassification) {
  EXPECT_STREQ(kernel_class_name(KernelClass::kRunCopy), "run-copy");
  EXPECT_STREQ(kernel_class_name(KernelClass::kStrided), "strided");
  EXPECT_STREQ(kernel_class_name(KernelClass::kPeriodicGap), "periodic-gap");
  EXPECT_EQ(kernel_class_for(BlockCyclic(8, 4), 1), KernelClass::kRunCopy);
  EXPECT_EQ(kernel_class_for(BlockCyclic(1, 64), 3), KernelClass::kStrided);
  EXPECT_EQ(kernel_class_for(BlockCyclic(4, 1), 3), KernelClass::kStrided);
  EXPECT_EQ(kernel_class_for(BlockCyclic(4, 8), 16), KernelClass::kStrided);
  EXPECT_EQ(kernel_class_for(BlockCyclic(4, 8), 33), KernelClass::kPeriodicGap);
  EXPECT_EQ(kernel_class_for(BlockCyclic(4, 8), 13), KernelClass::kPeriodicGap);
}

TEST(Kernels, FreeOffsetAndStridedPrimitivesMatchNaive) {
  // The comm-plan channel primitives, checked against their scalar spec
  // for an awkward period / tail combination.
  const std::vector<i64> off = {0, 2, 5};
  const i64 period = 3, advance = 9, count = 11;
  std::vector<double> base(128);
  for (std::size_t i = 0; i < base.size(); ++i) base[i] = static_cast<double>(i) * 0.5;

  std::vector<double> got(static_cast<std::size_t>(count)), want(static_cast<std::size_t>(count));
  for (i64 i = 0; i < count; ++i)
    want[static_cast<std::size_t>(i)] =
        base[static_cast<std::size_t>((i / period) * advance + off[static_cast<std::size_t>(i % period)])];
  kernel_gather_offsets(base.data(), off.data(), period, advance, count, got.data());
  EXPECT_EQ(got, want);

  std::vector<double> scat = base, expect = base;
  kernel_scatter_offsets(scat.data(), off.data(), period, advance, count, want.data());
  for (i64 i = 0; i < count; ++i)
    expect[static_cast<std::size_t>((i / period) * advance + off[static_cast<std::size_t>(i % period)])] =
        want[static_cast<std::size_t>(i)];
  EXPECT_EQ(scat, expect);

  std::vector<double> sgot(static_cast<std::size_t>(count));
  kernel_gather_strided(base.data() + 1, 7, count, sgot.data());
  for (i64 i = 0; i < count; ++i)
    EXPECT_EQ(sgot[static_cast<std::size_t>(i)], base[static_cast<std::size_t>(1 + i * 7)]);
}

TEST(Kernels, ForceScalarBuildDisablesSimd) {
#ifdef CYCLICK_FORCE_SCALAR
  EXPECT_FALSE(kdetail::simd_active());
#else
  // Informational in SIMD-capable builds: the toggle itself is what the
  // force-scalar CI leg pins down.
  SUCCEED();
#endif
}

}  // namespace
}  // namespace cyclick
