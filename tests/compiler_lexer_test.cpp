// Tests for the mini-HPF DSL lexer.
#include <gtest/gtest.h>

#include "cyclick/compiler/lexer.hpp"

namespace cyclick {
namespace {

std::vector<TokKind> kinds(const std::vector<Token>& toks) {
  std::vector<TokKind> out;
  out.reserve(toks.size());
  for (const Token& t : toks) out.push_back(t.kind);
  return out;
}

TEST(Lexer, SimpleStatement) {
  const auto toks = lex("processors P(4)");
  ASSERT_EQ(toks.size(), 7u);
  EXPECT_EQ(toks[0].kind, TokKind::kIdent);
  EXPECT_EQ(toks[0].text, "processors");
  EXPECT_EQ(toks[1].text, "P");
  EXPECT_EQ(toks[2].kind, TokKind::kLParen);
  EXPECT_EQ(toks[3].kind, TokKind::kNumber);
  EXPECT_EQ(toks[3].value, 4);
  EXPECT_EQ(toks[4].kind, TokKind::kRParen);
  EXPECT_EQ(toks[5].kind, TokKind::kNewline);
  EXPECT_EQ(toks[6].kind, TokKind::kEnd);
}

TEST(Lexer, OperatorsAndSectionSyntax) {
  const auto toks = lex("A(4:300:9) = 2*B(0:9) + 1");
  const std::vector<TokKind> want{
      TokKind::kIdent,  TokKind::kLParen, TokKind::kNumber, TokKind::kColon,
      TokKind::kNumber, TokKind::kColon,  TokKind::kNumber, TokKind::kRParen,
      TokKind::kAssign, TokKind::kNumber, TokKind::kStar,   TokKind::kIdent,
      TokKind::kLParen, TokKind::kNumber, TokKind::kColon,  TokKind::kNumber,
      TokKind::kRParen, TokKind::kPlus,   TokKind::kNumber, TokKind::kNewline,
      TokKind::kEnd};
  EXPECT_EQ(kinds(toks), want);
}

TEST(Lexer, CommentsAreSkipped) {
  const auto toks = lex("# a comment line\nprocessors P(2) # trailing\n# another\n");
  EXPECT_EQ(toks[0].text, "processors");
  // Comment content never appears.
  for (const Token& t : toks) EXPECT_NE(t.text, "comment");
}

TEST(Lexer, NewlineRunsCollapse) {
  const auto toks = lex("a\n\n\nb");
  const std::vector<TokKind> want{TokKind::kIdent, TokKind::kNewline, TokKind::kIdent,
                                  TokKind::kNewline, TokKind::kEnd};
  EXPECT_EQ(kinds(toks), want);
}

TEST(Lexer, LineNumbersTrackNewlines) {
  const auto toks = lex("a\nb\n\nc");
  EXPECT_EQ(toks[0].line, 1);  // a
  EXPECT_EQ(toks[2].line, 2);  // b
  EXPECT_EQ(toks[4].line, 4);  // c
}

TEST(Lexer, IdentifiersWithUnderscoresAndDigits) {
  const auto toks = lex("my_array_2");
  EXPECT_EQ(toks[0].kind, TokKind::kIdent);
  EXPECT_EQ(toks[0].text, "my_array_2");
}

TEST(Lexer, ComparisonOperators) {
  const auto toks = lex("a < b <= c > d >= e == f != g = h");
  const std::vector<TokKind> want{
      TokKind::kIdent, TokKind::kLess,      TokKind::kIdent, TokKind::kLessEq,
      TokKind::kIdent, TokKind::kGreater,   TokKind::kIdent, TokKind::kGreaterEq,
      TokKind::kIdent, TokKind::kEqEq,      TokKind::kIdent, TokKind::kNotEq,
      TokKind::kIdent, TokKind::kAssign,    TokKind::kIdent, TokKind::kNewline,
      TokKind::kEnd};
  EXPECT_EQ(kinds(toks), want);
}

TEST(Lexer, BangWithoutEqualsRejected) {
  EXPECT_THROW(lex("a ! b"), dsl_error);
}

TEST(Lexer, AdjacentEqualsDisambiguate) {
  // "===" lexes as '==' then '='.
  const auto toks = lex("===");
  EXPECT_EQ(toks[0].kind, TokKind::kEqEq);
  EXPECT_EQ(toks[1].kind, TokKind::kAssign);
}

TEST(Lexer, UnexpectedCharacterThrowsWithLine) {
  try {
    lex("ok\n@bad");
    FAIL() << "expected dsl_error";
  } catch (const dsl_error& e) {
    EXPECT_EQ(e.line(), 2);
  }
}

TEST(Lexer, EmptySource) {
  const auto toks = lex("");
  ASSERT_EQ(toks.size(), 1u);
  EXPECT_EQ(toks[0].kind, TokKind::kEnd);
}

}  // namespace
}  // namespace cyclick
