// Tests for the simulated mesh: deterministic event ordering, topology
// parsing and routing, the contention/straggler/incast cost model, plan
// replay parity with the transport-free executor, the SimMachine provider
// hook behind execute_copy_plan, and the named rejection of unknown
// backends. The conformance contract (FIFO, blocking recv, timeouts) is
// covered by the backend-parameterized suite in transport_test.cpp; this
// file pins what is *specific* to simulation — the predicted timeline.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "cyclick/net/backend.hpp"
#include "cyclick/runtime/section_ops.hpp"
#include "cyclick/sim/event_heap.hpp"
#include "cyclick/sim/sim_machine.hpp"
#include "cyclick/sim/sim_transport.hpp"
#include "cyclick/sim/topology.hpp"

namespace cyclick::sim {
namespace {

/// Scoped environment override so tests can exercise env parsing without
/// leaking into sibling tests.
class EnvVar {
 public:
  EnvVar(const char* name, const char* value) : name_(name) {
    ::setenv(name, value, /*overwrite=*/1);
  }
  ~EnvVar() { ::unsetenv(name_); }
  EnvVar(const EnvVar&) = delete;
  EnvVar& operator=(const EnvVar&) = delete;

 private:
  const char* name_;
};

TEST(EventHeap, PopsByTimeThenSchedulingOrder) {
  EventHeap heap;
  // Shuffled insert order; two pairs tie on time and must resolve by seq.
  heap.push(Event{30, 4, Event::Kind::kArrive, 0, 1, 0});
  heap.push(Event{10, 2, Event::Kind::kDepart, 0, 1, 0});
  heap.push(Event{20, 3, Event::Kind::kDepart, 1, 2, 1});
  heap.push(Event{10, 0, Event::Kind::kDepart, 2, 0, 2});
  heap.push(Event{10, 1, Event::Kind::kDepart, 1, 0, 3});
  ASSERT_EQ(heap.size(), 5);
  EXPECT_EQ(heap.top().seq, 0);

  std::vector<std::pair<i64, i64>> order;
  while (!heap.empty()) {
    const Event e = heap.pop();
    order.emplace_back(e.time_ns, e.seq);
  }
  const std::vector<std::pair<i64, i64>> want{
      {10, 0}, {10, 1}, {10, 2}, {20, 3}, {30, 4}};
  EXPECT_EQ(order, want);
}

TEST(Topology, NamesRoundTripAndUnknownIsRejected) {
  for (const Topology t : {Topology::kFull, Topology::kRing, Topology::kMesh2D}) {
    const auto parsed = parse_topology_name(topology_name(t));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, t);
  }
  EXPECT_FALSE(parse_topology_name("torus").has_value());
  EXPECT_FALSE(parse_topology_name("").has_value());
  EXPECT_FALSE(parse_topology_name("Full").has_value());  // case-sensitive
}

TEST(Topology, StragglerSpecParsesAndRejectsMalformedEntries) {
  const auto one = parse_straggler_spec("3:4");
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0].first, 3);
  EXPECT_DOUBLE_EQ(one[0].second, 4.0);

  const auto many = parse_straggler_spec("0:2.5,17:4");
  ASSERT_EQ(many.size(), 2u);
  EXPECT_EQ(many[1].first, 17);
  EXPECT_DOUBLE_EQ(many[0].second, 2.5);

  EXPECT_THROW((void)parse_straggler_spec("3"), precondition_error);
  EXPECT_THROW((void)parse_straggler_spec(":4"), precondition_error);
  EXPECT_THROW((void)parse_straggler_spec("3:"), precondition_error);
  EXPECT_THROW((void)parse_straggler_spec("3:0"), precondition_error);   // not positive
  EXPECT_THROW((void)parse_straggler_spec("-1:2"), precondition_error);  // negative rank
  EXPECT_THROW((void)parse_straggler_spec("a:2"), precondition_error);
}

TEST(Topology, ParamsComeFromTheEnvironment) {
  const EnvVar topo("CYCLICK_SIM_TOPOLOGY", "ring");
  const EnvVar lat("CYCLICK_SIM_LINK_LATENCY_NS", "250");
  const EnvVar strag("CYCLICK_SIM_STRAGGLER", "5:3");
  const SimParams p = SimParams::from_env();
  EXPECT_EQ(p.topology, Topology::kRing);
  EXPECT_EQ(p.link_latency_ns, 250);
  ASSERT_EQ(p.stragglers.size(), 1u);
  EXPECT_DOUBLE_EQ(p.straggler_multiplier(5), 3.0);
  EXPECT_DOUBLE_EQ(p.straggler_multiplier(4), 1.0);
}

TEST(Topology, MalformedEnvironmentIsRejectedNotDefaulted) {
  {
    const EnvVar topo("CYCLICK_SIM_TOPOLOGY", "torus");
    EXPECT_THROW((void)SimParams::from_env(), precondition_error);
  }
  {
    const EnvVar gbps("CYCLICK_SIM_LINK_GBPS", "-3");
    EXPECT_THROW((void)SimParams::from_env(), precondition_error);
  }
}

TEST(Topology, FullMeshUsesOneDedicatedLinkPerPair) {
  const Mesh mesh(Topology::kFull, 4);
  EXPECT_EQ(mesh.hop_count(0, 3), 1);
  EXPECT_EQ(mesh.hop_count(2, 2), 0);  // loopback bypasses the network
  std::vector<i64> links;
  mesh.route(1, 2, [&](i64 id) { links.push_back(id); });
  ASSERT_EQ(links.size(), 1u);
  EXPECT_EQ(mesh.link_name(links[0]), "1->2");
}

TEST(Topology, RingRoutesTheShorterArc) {
  const Mesh mesh(Topology::kRing, 8);
  EXPECT_EQ(mesh.hop_count(1, 3), 2);  // forward
  EXPECT_EQ(mesh.hop_count(0, 6), 2);  // backward is shorter
  EXPECT_EQ(mesh.hop_count(0, 4), 4);  // tie goes clockwise
  std::vector<std::string> names;
  mesh.route(0, 4, [&](i64 id) { names.push_back(mesh.link_name(id)); });
  const std::vector<std::string> want{"0->1", "1->2", "2->3", "3->4"};
  EXPECT_EQ(names, want);
  names.clear();
  mesh.route(0, 6, [&](i64 id) { names.push_back(mesh.link_name(id)); });
  const std::vector<std::string> back{"0->7", "7->6"};
  EXPECT_EQ(names, back);
}

TEST(Topology, Mesh2DFactorsMostSquareAndRoutesDimensionOrdered) {
  EXPECT_EQ(Mesh(Topology::kMesh2D, 16).rows(), 4);
  EXPECT_EQ(Mesh(Topology::kMesh2D, 16).cols(), 4);
  EXPECT_EQ(Mesh(Topology::kMesh2D, 12).rows(), 3);
  EXPECT_EQ(Mesh(Topology::kMesh2D, 12).cols(), 4);
  EXPECT_EQ(Mesh(Topology::kMesh2D, 7).rows(), 1);  // prime degenerates to a line
  EXPECT_EQ(Mesh(Topology::kMesh2D, 7).cols(), 7);

  // 3x4 grid: 0 sits at (0,0), 11 at (2,3); X moves first, then Y.
  const Mesh mesh(Topology::kMesh2D, 12);
  EXPECT_EQ(mesh.hop_count(0, 11), 5);  // manhattan distance
  std::vector<std::string> names;
  mesh.route(0, 11, [&](i64 id) { names.push_back(mesh.link_name(id)); });
  const std::vector<std::string> want{"0->1", "1->2", "2->3", "3->7", "7->11"};
  EXPECT_EQ(names, want);
}

/// One strided redistribution plan driven through a fresh SimTransport;
/// returns the transport's aggregate prediction.
SimTransport::Report replay_plan(i64 p, const SimParams& params) {
  const SpmdExecutor exec(p);
  DistributedArray<double> src(BlockCyclic(p, 4), p * 40);
  DistributedArray<double> dst(BlockCyclic(p, 7), p * 61);
  std::vector<double> image(static_cast<std::size_t>(p * 40));
  std::iota(image.begin(), image.end(), 0.0);
  src.scatter(image);
  const RegularSection ssec{0, p * 40 - 1, 2};
  const RegularSection dsec{0, (p * 40 - 2) / 2 * 3, 3};
  const CommPlan plan = build_copy_plan(src, ssec, dst, dsec, exec);
  SimTransport transport(p, params);
  execute_copy_plan_over(plan, src, dst, exec, transport);
  return transport.report();
}

TEST(SimTransport, PredictedScheduleIsDeterministicRunToRun) {
  // Same plan, same knobs, sequential drive: the predicted timeline must
  // be bit-identical, not merely close.
  const SimParams params;
  const auto a = replay_plan(16, params);
  const auto b = replay_plan(16, params);
  EXPECT_EQ(a.virtual_ns, b.virtual_ns);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.links_used, b.links_used);
  EXPECT_EQ(a.link_bytes_max, b.link_bytes_max);
  EXPECT_EQ(a.max_in_flight, b.max_in_flight);
  EXPECT_EQ(a.max_in_flight_rank, b.max_in_flight_rank);
  ASSERT_EQ(a.hottest.size(), b.hottest.size());
  for (std::size_t i = 0; i < a.hottest.size(); ++i) {
    EXPECT_EQ(a.hottest[i].id, b.hottest[i].id);
    EXPECT_EQ(a.hottest[i].busy_ns, b.hottest[i].busy_ns);
  }
}

TEST(SimTransport, PlanReplayMatchesTransportFreeExecution) {
  const i64 p = 64;
  const SpmdExecutor exec(p);
  DistributedArray<double> src(BlockCyclic(p, 4), 2000);
  DistributedArray<double> want(BlockCyclic(p, 7), 3000);
  DistributedArray<double> got(BlockCyclic(p, 7), 3000);
  std::vector<double> image(2000);
  std::iota(image.begin(), image.end(), 1.0);
  src.scatter(image);
  const RegularSection ssec{0, 1999, 2};
  const RegularSection dsec{0, 2997, 3};
  const CommPlan plan = build_copy_plan(src, ssec, want, dsec, exec);
  execute_copy_plan(plan, src, want, exec);

  SimTransport transport(p);
  execute_copy_plan_over(plan, src, got, exec, transport);
  EXPECT_EQ(got.gather(), want.gather());

  const auto rep = transport.report();
  EXPECT_GT(rep.messages, 0);
  EXPECT_GT(rep.virtual_ns, 0);
  EXPECT_GT(rep.links_used, 0);
  EXPECT_GE(rep.balance(), 1.0);  // max/mean is 1 at perfect balance
  EXPECT_GT(rep.utilization_max, 0.0);
}

TEST(SimTransport, RingCostsMoreThanTheCrossbarForTheSameTraffic) {
  SimParams full;
  SimParams ring;
  ring.topology = Topology::kRing;
  // Distant ranks on the ring pay per-hop latency and share links; the
  // crossbar pays one hop on a private link.
  EXPECT_GT(replay_plan(16, ring).virtual_ns, replay_plan(16, full).virtual_ns);
}

TEST(SimTransport, StragglerInjectionLengthensThePredictedPhase) {
  SimParams slow;
  slow.stragglers = {{0, 4.0}};
  EXPECT_GT(replay_plan(16, slow).virtual_ns, replay_plan(16, SimParams{}).virtual_ns);
}

TEST(SimTransport, IncastHighWaterTracksFanIn) {
  const i64 p = 9;
  SimTransport tr(p);
  const std::vector<std::byte> payload(64);
  for (i64 from = 1; from < p; ++from) tr.send(from, 0, payload);
  for (i64 from = 1; from < p; ++from) (void)tr.recv(0, from);
  const auto rep = tr.report();
  // All eight departures precede the first serialized arrival at rank 0's
  // endpoint, so the in-network high-water mark is the full fan-in.
  EXPECT_EQ(rep.max_in_flight, 8);
  EXPECT_EQ(rep.max_in_flight_rank, 0);
  EXPECT_EQ(rep.messages, 8);
  EXPECT_EQ(rep.self_messages, 0);
}

TEST(SimTransport, SelfSendsBypassTheNetwork) {
  SimTransport tr(4);
  tr.send(2, 2, std::vector<std::byte>(32));
  (void)tr.recv(2, 2);
  const auto rep = tr.report();
  EXPECT_EQ(rep.self_messages, 1);
  EXPECT_EQ(rep.links_used, 0);
  EXPECT_GT(rep.virtual_ns, 0);  // endpoint costs are still paid
}

TEST(SimMachine, ProvidesTransportsToExecuteCopyPlan) {
  const i64 p = 8;
  const SpmdExecutor exec(p);
  DistributedArray<double> src(BlockCyclic(p, 3), 200);
  DistributedArray<double> want(BlockCyclic(p, 5), 320);
  DistributedArray<double> got(BlockCyclic(p, 5), 320);
  std::vector<double> image(200);
  std::iota(image.begin(), image.end(), 0.0);
  src.scatter(image);
  const RegularSection ssec{0, 199, 2};
  const RegularSection dsec{10, 307, 3};
  const CommPlan plan = build_copy_plan(src, ssec, want, dsec, exec);
  execute_copy_plan(plan, src, want, exec);  // no provider installed: direct

  SimMachine machine{SimParams{}};
  EXPECT_EQ(machine.transport_or_null(p), nullptr);
  {
    const SimMachine::Scope scope(machine);
    execute_copy_plan(plan, src, got, exec);  // routed through the provider
  }
  EXPECT_EQ(got.gather(), want.gather());

  SimTransport* tr = machine.transport_or_null(p);
  ASSERT_NE(tr, nullptr);
  EXPECT_GT(tr->report().messages, 0);
  EXPECT_EQ(machine.worlds(), std::vector<i64>{p});
}

TEST(SimMachine, NestedScopesAreRejected) {
  SimMachine outer{SimParams{}};
  SimMachine inner{SimParams{}};
  const SimMachine::Scope scope(outer);
  EXPECT_THROW(SimMachine::Scope{inner}, precondition_error);
}

TEST(BackendSelection, SimParsesAndUnknownNamesListTheValidBackends) {
  EXPECT_EQ(net::parse_backend_name("sim"), net::Backend::kSim);
  EXPECT_EQ(std::string(net::backend_name(net::Backend::kSim)), "sim");

  net::Backend out = net::Backend::kInProc;
  EXPECT_TRUE(net::parse_backend_flag("--backend=sim", out));
  EXPECT_EQ(out, net::Backend::kSim);
  EXPECT_FALSE(net::parse_backend_flag("--ranks=4", out));
  try {
    (void)net::parse_backend_flag("--backend=bogus", out);
    FAIL() << "unknown backend should be rejected";
  } catch (const precondition_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("bogus"), std::string::npos) << what;
    EXPECT_NE(what.find("valid backends are: inproc, proc, sim"), std::string::npos)
        << what;
  }
}

TEST(BackendSelection, InvalidEnvironmentIsRejectedNotDefaulted) {
  {
    const EnvVar env("CYCLICK_BACKEND", "sim");
    EXPECT_EQ(net::backend_from_env(net::Backend::kInProc), net::Backend::kSim);
  }
  {
    const EnvVar env("CYCLICK_BACKEND", "typo");
    try {
      (void)net::backend_from_env(net::Backend::kInProc);
      FAIL() << "invalid CYCLICK_BACKEND should be rejected";
    } catch (const precondition_error& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find("CYCLICK_BACKEND"), std::string::npos) << what;
      EXPECT_NE(what.find("valid backends are"), std::string::npos) << what;
    }
  }
  EXPECT_EQ(net::backend_from_env(net::Backend::kProc), net::Backend::kProc);
}

}  // namespace
}  // namespace cyclick::sim
