// Randomized differential testing (fixed seeds, reproducible): across
// thousands of random (p, k, l, s, m) configurations, every address
// generation path in the library — the lattice algorithm, both sorting
// policies, the Hiranandani method where applicable, the table-free
// iterator, the offset tables, and the signed-stride wrapper — must agree
// exactly with the exhaustive oracle.
#include <gtest/gtest.h>

#include <random>

#include "cyclick/baselines/chatterjee.hpp"
#include "cyclick/baselines/hiranandani.hpp"
#include "cyclick/baselines/oracle.hpp"
#include "cyclick/core/iterator.hpp"
#include "cyclick/core/lattice_addresser.hpp"

namespace cyclick {
namespace {

struct RandomConfig {
  i64 p, k, l, s, m;
};

RandomConfig draw(std::mt19937_64& rng) {
  std::uniform_int_distribution<i64> p_d(1, 40);
  std::uniform_int_distribution<i64> k_d(1, 48);
  std::uniform_int_distribution<i64> l_d(-100, 400);
  const i64 p = p_d(rng);
  const i64 k = k_d(rng);
  std::uniform_int_distribution<i64> s_d(1, 3 * p * k + 7);
  std::uniform_int_distribution<i64> m_d(0, p - 1);
  return {p, k, l_d(rng), s_d(rng), m_d(rng)};
}

TEST(FuzzDifferential, AllConstructorsAgreeWithOracle) {
  std::mt19937_64 rng(0xC9C11C);
  for (int trial = 0; trial < 4000; ++trial) {
    const RandomConfig c = draw(rng);
    const BlockCyclic dist(c.p, c.k);
    const AccessPattern truth = oracle_access_pattern(dist, c.l, c.s, c.m);
    const AccessPattern lattice = compute_access_pattern(dist, c.l, c.s, c.m);
    ASSERT_EQ(lattice, truth) << "lattice: trial " << trial << " p=" << c.p << " k=" << c.k
                              << " l=" << c.l << " s=" << c.s << " m=" << c.m;
    const AccessPattern sorted =
        chatterjee_access_pattern(dist, c.l, c.s, c.m,
                                  trial % 2 ? SortKind::kComparison : SortKind::kRadix);
    ASSERT_EQ(sorted, truth) << "chatterjee: trial " << trial << " p=" << c.p
                             << " k=" << c.k << " l=" << c.l << " s=" << c.s << " m=" << c.m;
    if (hiranandani_applicable(dist, c.s)) {
      ASSERT_EQ(hiranandani_access_pattern(dist, c.l, c.s, c.m), truth)
          << "hiranandani: trial " << trial << " p=" << c.p << " k=" << c.k << " l=" << c.l
          << " s=" << c.s << " m=" << c.m;
    }
  }
}

TEST(FuzzDifferential, IteratorWalksMatchTables) {
  std::mt19937_64 rng(0x5EED);
  for (int trial = 0; trial < 1500; ++trial) {
    const RandomConfig c = draw(rng);
    const BlockCyclic dist(c.p, c.k);
    const AccessPattern pat = compute_access_pattern(dist, c.l, c.s, c.m);
    LocalAccessIterator it(dist, c.l, c.s, c.m);
    if (pat.empty()) {
      ASSERT_TRUE(it.done()) << "trial " << trial;
      continue;
    }
    ASSERT_FALSE(it.done()) << "trial " << trial;
    ASSERT_EQ(it.global(), pat.start_global) << "trial " << trial;
    ASSERT_EQ(it.local(), pat.start_local) << "trial " << trial;
    i64 local = pat.start_local;
    const i64 steps = 2 * pat.length + 3;
    for (i64 i = 0; i < steps; ++i) {
      local += pat.gaps[static_cast<std::size_t>(i % pat.length)];
      it.advance();
      ASSERT_EQ(it.local(), local)
          << "trial " << trial << " step " << i << " p=" << c.p << " k=" << c.k
          << " l=" << c.l << " s=" << c.s << " m=" << c.m;
      ASSERT_EQ(dist.owner(it.global()), c.m) << "trial " << trial << " step " << i;
      ASSERT_EQ(dist.local_index(it.global()), it.local()) << "trial " << trial;
    }
  }
}

TEST(FuzzDifferential, OffsetTablesReplayTheCycle) {
  std::mt19937_64 rng(0xAB1E);
  for (int trial = 0; trial < 1500; ++trial) {
    const RandomConfig c = draw(rng);
    const BlockCyclic dist(c.p, c.k);
    const AccessPattern pat = compute_access_pattern(dist, c.l, c.s, c.m);
    const OffsetTables tables = compute_offset_tables(dist, c.l, c.s, c.m);
    if (pat.empty()) {
      ASSERT_TRUE(tables.empty()) << "trial " << trial;
      continue;
    }
    i64 q = tables.start_offset;
    for (i64 i = 0; i < pat.length; ++i) {
      ASSERT_EQ(tables.delta[static_cast<std::size_t>(q)],
                pat.gaps[static_cast<std::size_t>(i)])
          << "trial " << trial << " i=" << i;
      q = tables.next_offset[static_cast<std::size_t>(q)];
      ASSERT_GE(q, 0) << "trial " << trial;
    }
    ASSERT_EQ(q, tables.start_offset) << "trial " << trial;
    // Full (phase-free) tables agree wherever the per-proc walk visited.
    const OffsetTables full = compute_full_offset_tables(dist, c.s);
    q = tables.start_offset;
    for (i64 i = 0; i < pat.length; ++i) {
      ASSERT_EQ(full.delta[static_cast<std::size_t>(q)],
                tables.delta[static_cast<std::size_t>(q)])
          << "trial " << trial;
      ASSERT_EQ(full.next_offset[static_cast<std::size_t>(q)],
                tables.next_offset[static_cast<std::size_t>(q)])
          << "trial " << trial;
      q = tables.next_offset[static_cast<std::size_t>(q)];
    }
  }
}

TEST(FuzzDifferential, SignedStridesMatchOracle) {
  std::mt19937_64 rng(0xD0C5);
  for (int trial = 0; trial < 1500; ++trial) {
    RandomConfig c = draw(rng);
    c.s = -c.s;  // descending
    const BlockCyclic dist(c.p, c.k);
    const AccessPattern truth = oracle_access_pattern(dist, c.l, c.s, c.m);
    const AccessPattern got = compute_access_pattern_signed(dist, c.l, c.s, c.m);
    ASSERT_EQ(got, truth) << "trial " << trial << " p=" << c.p << " k=" << c.k
                          << " l=" << c.l << " s=" << c.s << " m=" << c.m;
  }
}

TEST(FuzzDifferential, WorkBoundNeverExceeded) {
  std::mt19937_64 rng(0xB0DD);
  for (int trial = 0; trial < 2000; ++trial) {
    const RandomConfig c = draw(rng);
    const BlockCyclic dist(c.p, c.k);
    WorkStats stats;
    compute_access_pattern(dist, c.l, c.s, c.m, &stats);
    ASSERT_LE(stats.points_visited, 2 * c.k + 1)
        << "trial " << trial << " p=" << c.p << " k=" << c.k << " l=" << c.l << " s=" << c.s
        << " m=" << c.m;
  }
}

TEST(FuzzDifferential, FindLastAgainstBruteForce) {
  std::mt19937_64 rng(0x1A57);
  for (int trial = 0; trial < 1200; ++trial) {
    const RandomConfig c = draw(rng);
    const BlockCyclic dist(c.p, c.k);
    std::uniform_int_distribution<i64> len_d(1, 300);
    const RegularSection sec{c.l, c.l + len_d(rng), c.s};
    if (sec.empty()) continue;
    std::optional<i64> want;
    for (i64 t = 0; t < sec.size(); ++t)
      if (dist.owner(sec.element(t)) == c.m) want = sec.element(t);
    ASSERT_EQ(find_last(dist, sec, c.m), want)
        << "trial " << trial << " p=" << c.p << " k=" << c.k << " l=" << c.l << " s=" << c.s
        << " m=" << c.m;
  }
}

}  // namespace
}  // namespace cyclick
