// Tests for the Figure 1/2/6-style ASCII layout renderer.
#include <gtest/gtest.h>
#include <algorithm>

#include "cyclick/hpf/layout_render.hpp"

namespace cyclick {
namespace {

TEST(LayoutRender, SmallLayoutExactText) {
  // p=2, k=2 (pk=4), section (1:7:3) = {1, 4, 7}, two rows.
  const BlockCyclic dist(2, 2);
  const RegularSection sec{1, 7, 3};
  const std::string got = render_section_layout(dist, sec, 2);
  const std::string want =
      " 0 (1)| 2  3 \n"
      "[4] 5 | 6 [7]\n";
  EXPECT_EQ(got, want);
}

TEST(LayoutRender, ProcessorWalkMarksOnlyOwnedElements) {
  const BlockCyclic dist(2, 2);
  const RegularSection sec{1, 7, 3};  // {1, 4, 7}; proc 1 owns offsets {2,3}
  const std::string got = render_processor_walk(dist, sec, 1, 2);
  const std::string want =
      " 0 (1)| 2  3 \n"
      " 4  5 | 6 [7]\n";
  EXPECT_EQ(got, want);
}

TEST(LayoutRender, PaperFigure1Element108) {
  // Figure 1: p=4, k=8, element 108 sits in row 3 at offset 12 (processor
  // 1's block). Check the rendered grid brackets exactly that cell.
  const BlockCyclic dist(4, 8);
  const std::string got = render_layout(dist, 4, [](i64 g) { return g == 108; });
  // Row 3 must contain "[108]" and no other brackets anywhere.
  EXPECT_NE(got.find("[108]"), std::string::npos);
  EXPECT_EQ(got.find('['), got.rfind('['));
  // 4 rows rendered.
  EXPECT_EQ(std::count(got.begin(), got.end(), '\n'), 4);
}

TEST(LayoutRender, BlockSeparatorsCountMatchesProcessors) {
  const BlockCyclic dist(4, 8);
  const std::string got = render_section_layout(dist, {0, 31, 5}, 1);
  // p-1 = 3 separators in one row.
  EXPECT_EQ(std::count(got.begin(), got.end(), '|'), 3);
}

TEST(LayoutRender, BracketCountEqualsSectionElementsShown) {
  const BlockCyclic dist(4, 8);
  const RegularSection sec{4, 300, 9};
  const std::string got = render_section_layout(dist, sec, 10);  // indices 0..319
  // 33 section elements; the lower bound renders with parentheses.
  EXPECT_EQ(std::count(got.begin(), got.end(), '['), sec.size() - 1);
  EXPECT_EQ(std::count(got.begin(), got.end(), '('), 1);
}

TEST(LayoutRender, WalkBracketsMatchProcessorShare) {
  const BlockCyclic dist(4, 8);
  const RegularSection sec{4, 300, 9};
  for (i64 m = 0; m < 4; ++m) {
    const std::string got = render_processor_walk(dist, sec, m, 10);
    i64 owned = 0;
    for (i64 t = 0; t < sec.size(); ++t)
      if (dist.owner(sec.element(t)) == m && sec.element(t) != sec.lower) ++owned;
    EXPECT_EQ(std::count(got.begin(), got.end(), '['), owned) << m;
  }
}

TEST(LayoutRender, RejectsBadArguments) {
  const BlockCyclic dist(2, 2);
  EXPECT_THROW((void)render_section_layout(dist, {0, 3, 1}, 0), precondition_error);
  EXPECT_THROW((void)render_processor_walk(dist, {0, 3, 1}, 2, 1), precondition_error);
}

}  // namespace
}  // namespace cyclick
