// Cross-module integration tests: full pipelines combining the core
// algorithm, codegen, runtime, and compiler against sequential reference
// semantics.
#include <gtest/gtest.h>

#include <numeric>
#include <random>

#include "cyclick/baselines/chatterjee.hpp"
#include "cyclick/baselines/hiranandani.hpp"
#include "cyclick/baselines/oracle.hpp"
#include "cyclick/compiler/interp.hpp"
#include "cyclick/core/lattice_addresser.hpp"
#include "cyclick/runtime/section_ops.hpp"

namespace cyclick {
namespace {

TEST(Integration, RandomizedStatementStormMatchesReference) {
  // Apply a random sequence of fills/copies/transforms to a distributed
  // array and to a plain vector; the global images must stay identical.
  std::mt19937_64 rng(2026);
  const i64 n = 500;
  const BlockCyclic dist(5, 7);
  const SpmdExecutor exec(5);
  DistributedArray<double> arr(dist, n);
  std::vector<double> ref(static_cast<std::size_t>(n), 0.0);

  const auto random_section = [&](i64 limit) {
    std::uniform_int_distribution<i64> lo_d(0, limit - 2);
    const i64 lo = lo_d(rng);
    std::uniform_int_distribution<i64> hi_d(lo + 1, limit - 1);
    const i64 hi = hi_d(rng);
    std::uniform_int_distribution<i64> st_d(1, 11);
    const i64 st = st_d(rng);
    return RegularSection{lo, hi, st};
  };

  for (int step = 0; step < 60; ++step) {
    const int kind = static_cast<int>(rng() % 3);
    if (kind == 0) {
      const RegularSection sec = random_section(n);
      const double v = static_cast<double>(rng() % 1000);
      fill_section(arr, sec, v, exec);
      for (i64 t = 0; t < sec.size(); ++t) ref[static_cast<std::size_t>(sec.element(t))] = v;
    } else if (kind == 1) {
      const RegularSection sec = random_section(n);
      transform_section(arr, sec, [](double x) { return x * 0.5 + 3.0; }, exec);
      for (i64 t = 0; t < sec.size(); ++t) {
        auto& slot = ref[static_cast<std::size_t>(sec.element(t))];
        slot = slot * 0.5 + 3.0;
      }
    } else {
      RegularSection ssec = random_section(n);
      // Destination of matching size starting elsewhere.
      const i64 count = ssec.size();
      std::uniform_int_distribution<i64> lo_d(0, n - count);
      const i64 dlo = lo_d(rng);
      const RegularSection dsec{dlo, dlo + count - 1, 1};
      DistributedArray<double> tmp(dist, n);
      copy_section(arr, ssec, tmp, dsec, exec);
      copy_section(tmp, dsec, arr, dsec, exec);
      std::vector<double> vals(static_cast<std::size_t>(count));
      for (i64 t = 0; t < count; ++t)
        vals[static_cast<std::size_t>(t)] = ref[static_cast<std::size_t>(ssec.element(t))];
      for (i64 t = 0; t < count; ++t)
        ref[static_cast<std::size_t>(dsec.element(t))] = vals[static_cast<std::size_t>(t)];
    }
    ASSERT_EQ(arr.gather(), ref) << "diverged at step " << step;
  }
}

TEST(Integration, BlockScatteredMatrixVectorProduct) {
  // The Dongarra/van de Geijn/Walker motivation: a dense GEMV with the
  // matrix in block-scattered (cyclic(k)) column distribution. Each rank
  // owns whole columns; y = A x computed SPMD and compared to a serial GEMV.
  const i64 rows = 24, cols = 36;
  const BlockCyclic col_dist(4, 3);
  const SpmdExecutor exec(4);

  std::vector<double> a(static_cast<std::size_t>(rows * cols));
  std::vector<double> x(static_cast<std::size_t>(cols));
  std::mt19937_64 rng(7);
  for (auto& v : a) v = static_cast<double>(rng() % 10);
  for (auto& v : x) v = static_cast<double>(rng() % 5);

  // Columns distributed cyclic(3): rank m stores its columns packed.
  std::vector<std::vector<double>> local_cols(4);
  for (i64 m = 0; m < 4; ++m)
    local_cols[static_cast<std::size_t>(m)].resize(
        static_cast<std::size_t>(col_dist.local_size(m, cols) * rows));
  for (i64 j = 0; j < cols; ++j) {
    const i64 m = col_dist.owner(j);
    const i64 lj = col_dist.local_index(j);
    for (i64 i = 0; i < rows; ++i)
      local_cols[static_cast<std::size_t>(m)][static_cast<std::size_t>(lj * rows + i)] =
          a[static_cast<std::size_t>(i * cols + j)];
  }

  // SPMD partial products over owned columns (table-free enumeration of the
  // full column section), then reduction.
  std::vector<std::vector<double>> partial(4, std::vector<double>(static_cast<std::size_t>(rows), 0.0));
  exec.run([&](i64 m) {
    for_each_local_access(col_dist, RegularSection{0, cols - 1, 1}, m, [&](i64 j, i64 lj) {
      for (i64 i = 0; i < rows; ++i)
        partial[static_cast<std::size_t>(m)][static_cast<std::size_t>(i)] +=
            local_cols[static_cast<std::size_t>(m)][static_cast<std::size_t>(lj * rows + i)] *
            x[static_cast<std::size_t>(j)];
    });
  });
  std::vector<double> y(static_cast<std::size_t>(rows), 0.0);
  for (i64 m = 0; m < 4; ++m)
    for (i64 i = 0; i < rows; ++i)
      y[static_cast<std::size_t>(i)] += partial[static_cast<std::size_t>(m)][static_cast<std::size_t>(i)];

  for (i64 i = 0; i < rows; ++i) {
    double want = 0.0;
    for (i64 j = 0; j < cols; ++j)
      want += a[static_cast<std::size_t>(i * cols + j)] * x[static_cast<std::size_t>(j)];
    EXPECT_EQ(y[static_cast<std::size_t>(i)], want) << i;
  }
}

TEST(Integration, DslProgramAgainstRuntimeCalls) {
  // The same computation through the DSL and through direct runtime calls.
  dsl::Machine machine;
  machine.run_source(R"(
processors P(4)
template T(320)
distribute T onto P cyclic(8)
array A(320) align with T(i)
array B(320) align with T(i)
A(0:319) = 1
A(4:300:9) = 100
B(0:32:1) = A(4:292:9) + 1
)");

  const BlockCyclic dist(4, 8);
  const SpmdExecutor exec(4);
  DistributedArray<double> a(dist, 320), b(dist, 320);
  fill_section(a, {0, 319, 1}, 1.0, exec);
  fill_section(a, {4, 300, 9}, 100.0, exec);
  DistributedArray<double> tmp(dist, 320);
  copy_section(a, {4, 292, 9}, tmp, {0, 32, 1}, exec);
  transform_section(tmp, {0, 32, 1}, [](double x) { return x + 1.0; }, exec);
  copy_section(tmp, {0, 32, 1}, b, {0, 32, 1}, exec);

  EXPECT_EQ(machine.global_image("A"), a.gather());
  EXPECT_EQ(machine.global_image("B"), b.gather());
}

TEST(Integration, AllAddressingMethodsAcrossPaperBenchmarkGrid) {
  // The exact parameter grid of Table 1 (p=32; k and s sweeps), verified for
  // correctness (the bench harness verifies again before timing).
  const i64 p = 32;
  for (i64 k : {4, 8, 16, 32, 64, 128, 256, 512}) {
    const BlockCyclic dist(p, k);
    for (const i64 s : {i64{7}, i64{99}, k + 1, p * k - 1, p * k + 1}) {
      for (const i64 m : {i64{0}, p / 2, p - 1}) {
        const AccessPattern lattice = compute_access_pattern(dist, 0, s, m);
        const AccessPattern sorting = chatterjee_access_pattern(dist, 0, s, m);
        ASSERT_EQ(lattice, sorting) << "k=" << k << " s=" << s << " m=" << m;
        if (hiranandani_applicable(dist, s)) {
          ASSERT_EQ(hiranandani_access_pattern(dist, 0, s, m), lattice)
              << "k=" << k << " s=" << s << " m=" << m;
        }
      }
    }
  }
}

TEST(Integration, JacobiLikeIterationConverges) {
  // A 1-D smoothing iteration using shifted-section copies:
  // A(1:n-2) = (A(0:n-3) + A(2:n-1)) / 2, repeated; verify against serial.
  const i64 n = 200;
  const BlockCyclic dist(4, 8);
  const SpmdExecutor exec(4);
  DistributedArray<double> a(dist, n);
  std::vector<double> ref(static_cast<std::size_t>(n), 0.0);
  ref.front() = 100.0;
  ref.back() = 50.0;
  a.scatter(ref);

  for (int iter = 0; iter < 10; ++iter) {
    zip_sections(a, {1, n - 2, 1}, a, {0, n - 3, 1}, a, {2, n - 1, 1},
                 [](double l, double r) { return (l + r) / 2.0; }, exec);
    std::vector<double> next = ref;
    for (i64 i = 1; i < n - 1; ++i)
      next[static_cast<std::size_t>(i)] =
          (ref[static_cast<std::size_t>(i - 1)] + ref[static_cast<std::size_t>(i + 1)]) / 2.0;
    ref = next;
    ASSERT_EQ(a.gather(), ref) << "iteration " << iter;
  }
}

}  // namespace
}  // namespace cyclick
