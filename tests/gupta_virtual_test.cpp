// Tests for the Gupta et al. virtual-cyclic enumeration (paper §7): same
// element set as the oracle, constant-stride classes, and — the paper's
// point — a traversal order that is NOT increasing-index in general.
#include <gtest/gtest.h>

#include <algorithm>

#include "cyclick/baselines/gupta_virtual.hpp"
#include "cyclick/baselines/oracle.hpp"

namespace cyclick {
namespace {

TEST(VirtualCyclic, CoversExactlyTheOracleSet) {
  for (i64 p : {1, 2, 4}) {
    for (i64 k : {1, 3, 8}) {
      const BlockCyclic dist(p, k);
      for (i64 s : {1, 7, 9, 15, 33}) {
        for (i64 l : {0, 4}) {
          const RegularSection sec{l, l + 57 * s, s};
          for (i64 m = 0; m < p; ++m) {
            auto want = oracle_local_sequence(dist, sec, m);
            std::vector<Access> got;
            for_each_virtual_cyclic(dist, sec, m,
                                    [&](i64 g, i64 la) { got.push_back({g, la}); });
            // Same set (compare sorted by global index).
            std::sort(got.begin(), got.end(),
                      [](const Access& a, const Access& b) { return a.global < b.global; });
            ASSERT_EQ(got, want) << p << " " << k << " " << s << " l=" << l << " m=" << m;
          }
        }
      }
    }
  }
}

TEST(VirtualCyclic, ClassesHaveConstantStrides) {
  const BlockCyclic dist(4, 8);
  const RegularSection sec{4, 1000, 9};
  for (i64 m = 0; m < 4; ++m) {
    for (const VirtualClass& cls : virtual_cyclic_classes(dist, sec, m)) {
      EXPECT_GE(cls.block_offset, 0);
      EXPECT_LT(cls.block_offset, 8);
      EXPECT_GT(cls.count, 0);
      // Every element of the class is in the section, on this processor,
      // at the advertised offsets and addresses.
      i64 g = cls.first_global;
      i64 la = cls.first_local;
      for (i64 i = 0; i < cls.count; ++i) {
        EXPECT_TRUE(sec.contains(g)) << g;
        EXPECT_EQ(dist.owner(g), m);
        EXPECT_EQ(dist.block_offset(g), cls.block_offset);
        EXPECT_EQ(dist.local_index(g), la);
        g += cls.global_stride;
        la += cls.local_stride;
      }
    }
  }
}

TEST(VirtualCyclic, OrderDiffersFromIndexOrderInGeneral) {
  // The paper's §7 criticism: virtual-cyclic visits classes, not increasing
  // indices. For p=4, k=8, s=9, processor 1 the index-ordered walk starts
  // 13, 40, 76 (crossing offsets), while class order groups same offsets.
  const BlockCyclic dist(4, 8);
  const RegularSection sec{4, 300, 9};
  std::vector<i64> order;
  for_each_virtual_cyclic(dist, sec, 1, [&](i64 g, i64) { order.push_back(g); });
  ASSERT_GT(order.size(), 2u);
  EXPECT_FALSE(std::is_sorted(order.begin(), order.end()));
}

TEST(VirtualCyclic, SingleClassDegenerates) {
  // pk | s: one offset class per owning processor, strictly ascending.
  const BlockCyclic dist(4, 8);
  const RegularSection sec{0, 319, 32};
  std::vector<i64> order;
  for_each_virtual_cyclic(dist, sec, 0, [&](i64 g, i64) { order.push_back(g); });
  EXPECT_TRUE(std::is_sorted(order.begin(), order.end()));
  EXPECT_EQ(static_cast<i64>(order.size()), sec.size());
  EXPECT_EQ(virtual_cyclic_classes(dist, sec, 0).size(), 1u);
}

TEST(VirtualCyclic, EmptyAndOutOfRangeCases) {
  const BlockCyclic dist(4, 8);
  EXPECT_TRUE(virtual_cyclic_classes(dist, RegularSection{5, 4, 1}, 0).empty());
  EXPECT_TRUE(virtual_cyclic_classes(dist, RegularSection{0, 319, 32}, 2).empty());
  EXPECT_THROW((void)virtual_cyclic_classes(dist, RegularSection{0, 9, 1}, 4),
               precondition_error);
}

TEST(VirtualCyclic, DescendingSectionsCoverSameSet) {
  const BlockCyclic dist(2, 4);
  const RegularSection down{99, 3, -7};
  for (i64 m = 0; m < 2; ++m) {
    auto want = oracle_local_sequence(dist, down, m);
    std::sort(want.begin(), want.end(),
              [](const Access& a, const Access& b) { return a.global < b.global; });
    std::vector<Access> got;
    for_each_virtual_cyclic(dist, down, m, [&](i64 g, i64 la) { got.push_back({g, la}); });
    std::sort(got.begin(), got.end(),
              [](const Access& a, const Access& b) { return a.global < b.global; });
    EXPECT_EQ(got, want) << m;
  }
}

}  // namespace
}  // namespace cyclick
