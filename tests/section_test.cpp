// Tests for Fortran-90 regular sections (subscript triplets).
#include <gtest/gtest.h>

#include "cyclick/hpf/section.hpp"

namespace cyclick {
namespace {

TEST(RegularSection, SizeAscending) {
  EXPECT_EQ((RegularSection{0, 9, 1}.size()), 10);
  EXPECT_EQ((RegularSection{0, 9, 3}.size()), 4);   // 0 3 6 9
  EXPECT_EQ((RegularSection{0, 8, 3}.size()), 3);   // 0 3 6
  EXPECT_EQ((RegularSection{4, 300, 9}.size()), 33);
  EXPECT_EQ((RegularSection{5, 4, 1}.size()), 0);
}

TEST(RegularSection, SizeDescending) {
  EXPECT_EQ((RegularSection{9, 0, -1}.size()), 10);
  EXPECT_EQ((RegularSection{9, 0, -3}.size()), 4);  // 9 6 3 0
  EXPECT_EQ((RegularSection{9, 1, -3}.size()), 3);  // 9 6 3
  EXPECT_EQ((RegularSection{0, 9, -1}.size()), 0);
}

TEST(RegularSection, ElementsAndLast) {
  const RegularSection s{4, 300, 9};
  EXPECT_EQ(s.element(0), 4);
  EXPECT_EQ(s.element(1), 13);
  EXPECT_EQ(s.last(), 292);
  EXPECT_THROW((void)s.element(-1), precondition_error);
  EXPECT_THROW((void)s.element(s.size()), precondition_error);
}

TEST(RegularSection, Contains) {
  const RegularSection s{4, 300, 9};
  EXPECT_TRUE(s.contains(4));
  EXPECT_TRUE(s.contains(13));
  EXPECT_TRUE(s.contains(292));
  EXPECT_FALSE(s.contains(301));  // beyond the bound
  EXPECT_FALSE(s.contains(5));
  EXPECT_FALSE(s.contains(-5));
  const RegularSection down{9, 0, -3};
  EXPECT_TRUE(down.contains(9));
  EXPECT_TRUE(down.contains(0));
  EXPECT_FALSE(down.contains(12));
  EXPECT_FALSE(down.contains(1));
}

TEST(RegularSection, AscendingNormalization) {
  const RegularSection down{9, 1, -3};  // {9, 6, 3}
  const RegularSection up = down.ascending();
  EXPECT_EQ(up.lower, 3);
  EXPECT_EQ(up.upper, 9);
  EXPECT_EQ(up.stride, 3);
  EXPECT_EQ(up.size(), down.size());
  // Ascending of ascending tightens the bound to the last element.
  const RegularSection loose{0, 10, 3};  // {0 3 6 9}
  EXPECT_EQ(loose.ascending().upper, 9);
}

TEST(RegularSection, AffineImagePreservesElementOrder) {
  const RegularSection s{1, 7, 2};  // 1 3 5 7
  const RegularSection img = s.affine_image(3, 10);  // 13 19 25 31
  EXPECT_EQ(img.size(), s.size());
  for (i64 t = 0; t < s.size(); ++t) EXPECT_EQ(img.element(t), 3 * s.element(t) + 10);
  const RegularSection neg = s.affine_image(-2, 100);  // 98 94 90 86
  EXPECT_EQ(neg.size(), s.size());
  for (i64 t = 0; t < s.size(); ++t) EXPECT_EQ(neg.element(t), -2 * s.element(t) + 100);
}

TEST(RegularSection, IntersectBasic) {
  // {0,3,6,...,30} ∩ {0,5,10,...,30} = {0,15,30}.
  const RegularSection a{0, 30, 3};
  const RegularSection b{0, 30, 5};
  const RegularSection c = a.intersect(b);
  EXPECT_EQ(c.lower, 0);
  EXPECT_EQ(c.stride, 15);
  EXPECT_EQ(c.size(), 3);
}

TEST(RegularSection, IntersectEmptyWhenIncompatible) {
  // Odd vs even numbers.
  const RegularSection odd{1, 99, 2};
  const RegularSection even{0, 98, 2};
  EXPECT_TRUE(odd.intersect(even).empty());
}

TEST(RegularSection, IntersectHandlesOffsetsAndBounds) {
  const RegularSection a{2, 50, 4};   // 2 6 10 ... 50
  const RegularSection b{10, 40, 6};  // 10 16 22 28 34 40
  const RegularSection c = a.intersect(b);
  // common: values ≡ 2 (mod 4) and ≡ 4 (mod 6): 10, 22, 34, 46>40 -> {10,22,34}
  EXPECT_EQ(c.lower, 10);
  EXPECT_EQ(c.stride, 12);
  EXPECT_EQ(c.size(), 3);
}

TEST(RegularSection, IntersectExhaustiveAgainstSets) {
  for (i64 l1 = 0; l1 < 6; ++l1)
    for (i64 s1 : {1, 2, 3, 5})
      for (i64 l2 = 0; l2 < 6; ++l2)
        for (i64 s2 : {1, 2, 4, 6}) {
          const RegularSection a{l1, l1 + 4 * s1, s1};
          const RegularSection b{l2, l2 + 5 * s2, s2};
          const RegularSection c = a.intersect(b);
          for (i64 v = -5; v <= 60; ++v) {
            const bool in_both = a.contains(v) && b.contains(v);
            EXPECT_EQ(c.contains(v), in_both)
                << a.to_string() << " ∩ " << b.to_string() << " at " << v;
          }
        }
}

TEST(RegularSection, IntersectWithDescendingOperands) {
  const RegularSection down{30, 0, -3};
  const RegularSection up{0, 30, 5};
  const RegularSection c = down.intersect(up);
  EXPECT_EQ(c.lower, 0);
  EXPECT_EQ(c.stride, 15);
  EXPECT_EQ(c.size(), 3);
}

TEST(RegularSection, ZeroStrideRejected) {
  EXPECT_THROW(RegularSection(0, 10, 0), precondition_error);
}

TEST(RegularSection, ToString) {
  EXPECT_EQ((RegularSection{4, 300, 9}.to_string()), "(4:300:9)");
}

}  // namespace
}  // namespace cyclick
