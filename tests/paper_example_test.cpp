// Locks in every concrete number the paper derives for its running example
// (Figures 1-4 and 6): p = 4 processors, cyclic(8) distribution, stride 9.
#include <gtest/gtest.h>

#include "cyclick/baselines/chatterjee.hpp"
#include "cyclick/baselines/oracle.hpp"
#include "cyclick/core/iterator.hpp"
#include "cyclick/core/lattice_addresser.hpp"
#include "cyclick/lattice/lattice.hpp"

namespace cyclick {
namespace {

const BlockCyclic kDist{4, 8};  // p = 4, k = 8, pk = 32

TEST(PaperFigure1, Element108Coordinates) {
  // "array element A(108) has offset 4 in block 3 of processor 1".
  EXPECT_EQ(kDist.owner(108), 1);
  EXPECT_EQ(kDist.row(108), 3);
  EXPECT_EQ(kDist.block_offset(108), 4);
  // "the coordinates of the array element with index 108 are (12, 3)":
  // offset-in-row 12, row 3.
  EXPECT_EQ(kDist.offset(108), 12);
}

TEST(PaperSection3, BasisTestExample) {
  // "(3,3): 3x32+3 = 11x9 and (-1,2): 2x32-1 = 7x9. Since 3x7-2x11 = -1,
  // these vectors form a lattice basis." (s = 9, l = 0.)
  const SectionLattice lattice(32, 9);
  const SectionPoint p1{{3, 3}, 11};
  const SectionPoint p2{{-1, 2}, 7};
  ASSERT_TRUE(lattice.contains(p1.v));
  ASSERT_TRUE(lattice.contains(p2.v));
  EXPECT_EQ(lattice.index_of(p1.v), 11);
  EXPECT_EQ(lattice.index_of(p2.v), 7);
  EXPECT_TRUE(lattice.is_basis(p1, p2));
}

TEST(PaperSection3, CanonicalBasisIsABasis) {
  const SectionLattice lattice(32, 9);
  const auto [b1, b2] = lattice.canonical_basis();
  EXPECT_TRUE(lattice.contains(b1.v));
  EXPECT_TRUE(lattice.contains(b2.v));
  EXPECT_TRUE(lattice.is_basis(b1, b2));
  // First vector is the index-1 point (9 mod 32, 9 div 32) = (9, 0).
  EXPECT_EQ(b1.v, (LatticePoint{9, 0}));
  EXPECT_EQ(b1.index, 1);
}

TEST(PaperSection4, RAndLVectors) {
  // "vector R ... is equal to (4,1) and corresponds to the regular section
  //  index 1x32+4 = 36. Vector L ... is equal to (5,-1), and its
  //  corresponding index is -1x32+5 = -27."
  const auto basis = select_rl_basis(4, 8, 9);
  ASSERT_TRUE(basis.has_value());
  EXPECT_EQ(basis->r.v, (LatticePoint{4, 1}));
  EXPECT_EQ(basis->l.v, (LatticePoint{5, -1}));
  // Section-index values: R corresponds to value 36 = 4*9, L to -27 = -3*9.
  EXPECT_EQ(basis->r.index * 9, 36);
  EXPECT_EQ(basis->l.index * 9, -27);
  EXPECT_EQ(basis->d, 1);
  // "The smallest positive index on processor 0 is 36 ... The largest index
  //  in the first cycle is 261, and since the point that starts the next
  //  cycle is 288, we have L = (5,8) - (0,9) = (5,-1)."
  const SectionLattice lattice(32, 9);
  EXPECT_TRUE(lattice.is_basis(basis->r, basis->l));
}

TEST(PaperFigure6, AlgorithmWalkthrough) {
  // Input p=4, k=8, l=4, s=9, m=1: start = 13, length = 8,
  // AM = [3, 12, 15, 12, 3, 12, 3, 12].
  WorkStats stats;
  const AccessPattern pat = compute_access_pattern(kDist, 4, 9, 1, &stats);
  EXPECT_EQ(pat.start_global, 13);
  EXPECT_EQ(pat.length, 8);
  EXPECT_EQ(pat.gaps, (std::vector<i64>{3, 12, 15, 12, 3, 12, 3, 12}));
  // Local address of 13: row 0, block offset 13 - 8 = 5.
  EXPECT_EQ(pat.start_local, 5);
  // Work bound of Section 5.1: at most 2k+1 points examined.
  EXPECT_LE(stats.points_visited, 2 * 8 + 1);
}

TEST(PaperFigure6, WalkMatchesListedIndices) {
  // The rectangles in Figure 6 mark processor 1's section elements,
  // beginning 13, 40, 76, 139 (the walkthrough's text), continuing to 301,
  // the first point of the next cycle. (Elements are 4+9j with
  // (4+9j) mod 32 in [8,16).)
  LocalAccessIterator it(kDist, 4, 9, 1);
  const std::vector<i64> expected{13, 40, 76, 139, 175, 202, 238, 265, 301};
  for (const i64 want : expected) {
    ASSERT_FALSE(it.done());
    EXPECT_EQ(it.global(), want);
    it.advance();
  }
}

TEST(PaperSection2, StartLocationForEveryProcessor) {
  // l = 0, s = 9: first section elements per processor from Figure 2's
  // marked lattice (proc 0 owns offset range [0,8), etc.).
  const std::vector<i64> expect_start{0, 9, 18, 27};
  for (i64 m = 0; m < 4; ++m) {
    const auto si = find_start(kDist, 0, 9, m);
    ASSERT_TRUE(si.has_value());
    EXPECT_EQ(si->start_global, expect_start[static_cast<std::size_t>(m)]) << "m=" << m;
  }
}

TEST(PaperExample, AllMethodsAgreeForAllProcessors) {
  for (i64 m = 0; m < 4; ++m) {
    const AccessPattern lattice = compute_access_pattern(kDist, 4, 9, m);
    const AccessPattern sorting = chatterjee_access_pattern(kDist, 4, 9, m);
    const AccessPattern truth = oracle_access_pattern(kDist, 4, 9, m);
    EXPECT_EQ(lattice, truth) << "m=" << m;
    EXPECT_EQ(sorting, truth) << "m=" << m;
  }
}

TEST(PaperExample, CycleAdvanceIsStrideTimesBlock) {
  // One period advances s/d = 9 rows of k = 8 local cells: 72.
  const AccessPattern pat = compute_access_pattern(kDist, 4, 9, 1);
  EXPECT_EQ(pat.cycle_advance(), 72);
}

}  // namespace
}  // namespace cyclick
