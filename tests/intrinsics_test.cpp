// Tests for the HPF/F90 array intrinsics (CSHIFT, EOSHIFT, DOT_PRODUCT,
// COUNT, MAXLOC, MINLOC) over distributed arrays.
#include <gtest/gtest.h>

#include <numeric>

#include "cyclick/runtime/intrinsics.hpp"

namespace cyclick {
namespace {

std::vector<double> iota_image(i64 n) {
  std::vector<double> v(static_cast<std::size_t>(n));
  std::iota(v.begin(), v.end(), 0.0);
  return v;
}

TEST(Cshift, MatchesReferenceAcrossShifts) {
  const i64 n = 50;
  const SpmdExecutor exec(4);
  DistributedArray<double> in(BlockCyclic(4, 3), n), out(BlockCyclic(4, 3), n);
  in.scatter(iota_image(n));
  for (const i64 shift : {0L, 1L, 7L, -3L, 49L, 50L, 123L, -123L}) {
    cshift(in, out, shift, exec);
    const auto image = out.gather();
    for (i64 i = 0; i < n; ++i)
      EXPECT_EQ(image[static_cast<std::size_t>(i)],
                static_cast<double>(floor_mod(i + shift, n)))
          << "shift=" << shift << " i=" << i;
  }
}

TEST(Cshift, AcrossDifferentDistributions) {
  const i64 n = 64;
  const SpmdExecutor exec(4);
  DistributedArray<double> in(BlockCyclic(4, 8), n), out(BlockCyclic(4, 5), n);
  in.scatter(iota_image(n));
  cshift(in, out, 10, exec);
  const auto image = out.gather();
  for (i64 i = 0; i < n; ++i)
    EXPECT_EQ(image[static_cast<std::size_t>(i)], static_cast<double>((i + 10) % n)) << i;
}

TEST(Eoshift, PositiveAndNegativeShifts) {
  const i64 n = 30;
  const SpmdExecutor exec(3);
  DistributedArray<double> in(BlockCyclic(3, 4), n), out(BlockCyclic(3, 4), n);
  in.scatter(iota_image(n));
  eoshift(in, out, 5, -1.0, exec);
  auto image = out.gather();
  for (i64 i = 0; i < n; ++i)
    EXPECT_EQ(image[static_cast<std::size_t>(i)],
              i + 5 < n ? static_cast<double>(i + 5) : -1.0)
        << i;
  eoshift(in, out, -4, 99.0, exec);
  image = out.gather();
  for (i64 i = 0; i < n; ++i)
    EXPECT_EQ(image[static_cast<std::size_t>(i)],
              i - 4 >= 0 ? static_cast<double>(i - 4) : 99.0)
        << i;
}

TEST(Eoshift, ShiftBeyondLengthFillsEverything) {
  const i64 n = 12;
  const SpmdExecutor exec(2);
  DistributedArray<double> in(BlockCyclic(2, 2), n), out(BlockCyclic(2, 2), n);
  in.scatter(iota_image(n));
  eoshift(in, out, 12, 7.0, exec);
  for (const double v : out.gather()) EXPECT_EQ(v, 7.0);
  eoshift(in, out, -99, 3.0, exec);
  for (const double v : out.gather()) EXPECT_EQ(v, 3.0);
}

TEST(DotProduct, StridedSectionsAcrossDistributions) {
  const SpmdExecutor exec(4);
  DistributedArray<double> a(BlockCyclic(4, 8), 320), b(BlockCyclic(4, 3), 200);
  a.scatter(iota_image(320));
  b.scatter(iota_image(200));
  const RegularSection asec{0, 318, 6};   // 54 elements? (318-0)/6+1 = 54
  const RegularSection bsec{1, 160, 3};   // (160-1)/3+1 = 54
  const double got = dot_product(a, asec, b, bsec, exec);
  double want = 0.0;
  for (i64 t = 0; t < asec.size(); ++t)
    want += static_cast<double>(asec.element(t)) * static_cast<double>(bsec.element(t));
  EXPECT_EQ(got, want);
}

TEST(CountSection, PredicateCounting) {
  const SpmdExecutor exec(4);
  DistributedArray<double> a(BlockCyclic(4, 8), 320);
  a.scatter(iota_image(320));
  const i64 big = count_section(a, {0, 319, 1}, [](double v) { return v >= 200.0; }, exec);
  EXPECT_EQ(big, 120);
  const i64 strided =
      count_section(a, {4, 300, 9}, [](double v) { return v > 150.0; }, exec);
  i64 want = 0;
  const RegularSection sec{4, 300, 9};
  for (i64 t = 0; t < sec.size(); ++t)
    if (sec.element(t) > 150) ++want;
  EXPECT_EQ(strided, want);
}

TEST(MaxMinLoc, FindFirstExtremum) {
  const SpmdExecutor exec(4);
  DistributedArray<double> a(BlockCyclic(4, 8), 320);
  auto image = iota_image(320);
  image[77] = 1000.0;
  image[200] = 1000.0;  // tie: first position (smaller t) wins
  image[5] = -50.0;
  a.scatter(image);
  const RegularSection whole{0, 319, 1};
  EXPECT_EQ(maxloc_section(a, whole, exec), 77);
  EXPECT_EQ(minloc_section(a, whole, exec), 5);
  // Within a strided section, positions are section-relative.
  const RegularSection odd{1, 319, 2};
  EXPECT_EQ(maxloc_section(a, odd, exec), (77 - 1) / 2);
  EXPECT_EQ(minloc_section(a, odd, exec), (5 - 1) / 2);
}

TEST(MaxMinLoc, EmptySectionRejected) {
  const SpmdExecutor exec(2);
  DistributedArray<double> a(BlockCyclic(2, 2), 10);
  EXPECT_THROW((void)maxloc_section(a, RegularSection{5, 4, 1}, exec), precondition_error);
}

TEST(SumPrefix, WholeArrayScan) {
  const i64 n = 100;
  const SpmdExecutor exec(4);
  DistributedArray<double> in(BlockCyclic(4, 7), n), out(BlockCyclic(4, 7), n);
  in.scatter(iota_image(n));
  sum_prefix_section(in, {0, n - 1, 1}, out, {0, n - 1, 1}, exec);
  const auto image = out.gather();
  double acc = 0.0;
  for (i64 i = 0; i < n; ++i) {
    acc += static_cast<double>(i);
    EXPECT_EQ(image[static_cast<std::size_t>(i)], acc) << i;
  }
}

TEST(SumPrefix, StridedAndDescendingSections) {
  const SpmdExecutor exec(3);
  DistributedArray<double> in(BlockCyclic(3, 4), 120), out(BlockCyclic(3, 5), 120);
  in.scatter(iota_image(120));
  // out(descending section) gets the scan of in(ascending strided section)
  // matched position by position.
  const RegularSection ssec{2, 110, 4};   // 28 elements
  const RegularSection osec{111, 3, -4};  // 28 elements, descending
  sum_prefix_section(in, ssec, out, osec, exec);
  double acc = 0.0;
  for (i64 t = 0; t < ssec.size(); ++t) {
    acc += static_cast<double>(ssec.element(t));
    EXPECT_EQ(out.get(osec.element(t)), acc) << t;
  }
}

TEST(SumPrefix, InPlaceOnSameArrayViaDistinctSections) {
  const SpmdExecutor exec(2);
  DistributedArray<double> arr(BlockCyclic(2, 3), 40);
  arr.scatter(std::vector<double>(40, 1.0));
  // Second half receives the scan of the first half: 1, 2, ..., 20.
  sum_prefix_section(arr, {0, 19, 1}, arr, {20, 39, 1}, exec);
  for (i64 i = 0; i < 20; ++i)
    EXPECT_EQ(arr.get(20 + i), static_cast<double>(i + 1)) << i;
}

TEST(SumPrefix, MoreRanksThanElements) {
  const SpmdExecutor exec(8);
  DistributedArray<double> in(BlockCyclic(8, 2), 5), out(BlockCyclic(8, 2), 5);
  in.scatter(std::vector<double>{3, 1, 4, 1, 5});
  sum_prefix_section(in, {0, 4, 1}, out, {0, 4, 1}, exec);
  EXPECT_EQ(out.gather(), (std::vector<double>{3, 4, 8, 9, 14}));
}

TEST(Cshift, InverseShiftsCompose) {
  const i64 n = 40;
  const SpmdExecutor exec(4);
  DistributedArray<double> a(BlockCyclic(4, 4), n), b(BlockCyclic(4, 4), n),
      c(BlockCyclic(4, 4), n);
  a.scatter(iota_image(n));
  cshift(a, b, 13, exec);
  cshift(b, c, -13, exec);
  EXPECT_EQ(c.gather(), a.gather());
}

}  // namespace
}  // namespace cyclick
