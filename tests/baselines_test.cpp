// Directed tests for the baseline implementations themselves (the property
// sweep cross-checks them against the oracle; these tests pin down their
// individual behaviours and edge cases).
#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "cyclick/baselines/chatterjee.hpp"
#include "cyclick/baselines/hiranandani.hpp"
#include "cyclick/baselines/oracle.hpp"

namespace cyclick {
namespace {

TEST(RadixSort, SortsRandomKeys) {
  std::mt19937_64 rng(42);
  for (const std::size_t n : {0u, 1u, 2u, 17u, 1000u}) {
    std::vector<i64> keys(n);
    for (auto& v : keys) v = static_cast<i64>(rng() % (INT64_C(1) << 40));
    std::vector<i64> want = keys;
    std::sort(want.begin(), want.end());
    radix_sort_i64(keys);
    EXPECT_EQ(keys, want) << n;
  }
}

TEST(RadixSort, AlreadySortedAndReverseSorted) {
  // The paper's s = pk+1 / s = pk-1 cases produce properly and reversely
  // sorted initial cycles; make sure both orders round-trip.
  std::vector<i64> up(512);
  for (std::size_t i = 0; i < up.size(); ++i) up[i] = static_cast<i64>(i) * 3;
  std::vector<i64> down(up.rbegin(), up.rend());
  std::vector<i64> want = up;
  radix_sort_i64(up);
  EXPECT_EQ(up, want);
  radix_sort_i64(down);
  EXPECT_EQ(down, want);
}

TEST(RadixSort, RejectsNegativeKeys) {
  std::vector<i64> keys{3, -1, 2};
  EXPECT_THROW(radix_sort_i64(keys), precondition_error);
}

TEST(Chatterjee, ReproducesPaperExample) {
  const BlockCyclic dist(4, 8);
  const AccessPattern pat = chatterjee_access_pattern(dist, 4, 9, 1);
  EXPECT_EQ(pat.start_global, 13);
  EXPECT_EQ(pat.gaps, (std::vector<i64>{3, 12, 15, 12, 3, 12, 3, 12}));
}

TEST(Chatterjee, SortPoliciesProduceIdenticalTables) {
  const BlockCyclic dist(32, 64);
  for (i64 s : {7, 99, 65, 2047, 2049}) {
    for (i64 m : {0, 13, 31}) {
      const AccessPattern cmp = chatterjee_access_pattern(dist, 0, s, m, SortKind::kComparison);
      const AccessPattern rad = chatterjee_access_pattern(dist, 0, s, m, SortKind::kRadix);
      const AccessPattern aut = chatterjee_access_pattern(dist, 0, s, m, SortKind::kAuto);
      EXPECT_EQ(cmp, rad) << s << " " << m;
      EXPECT_EQ(cmp, aut) << s << " " << m;
    }
  }
}

TEST(Chatterjee, RejectsNonPositiveStride) {
  const BlockCyclic dist(4, 8);
  EXPECT_THROW(chatterjee_access_pattern(dist, 0, 0, 0), precondition_error);
  EXPECT_THROW(chatterjee_access_pattern(dist, 0, -9, 0), precondition_error);
}

TEST(Hiranandani, ApplicabilityPredicate) {
  const BlockCyclic dist(4, 8);  // pk = 32
  EXPECT_TRUE(hiranandani_applicable(dist, 7));    // 7 < 8
  EXPECT_TRUE(hiranandani_applicable(dist, 33));   // 33 mod 32 = 1 < 8
  EXPECT_TRUE(hiranandani_applicable(dist, 32));   // 0 < 8
  EXPECT_FALSE(hiranandani_applicable(dist, 9));   // 9 >= 8
  EXPECT_FALSE(hiranandani_applicable(dist, 31));  // 31 >= 8
  EXPECT_FALSE(hiranandani_applicable(dist, -7));  // negative strides excluded
}

TEST(Hiranandani, ThrowsOutsideItsCase) {
  const BlockCyclic dist(4, 8);
  EXPECT_THROW(hiranandani_access_pattern(dist, 0, 9, 0), precondition_error);
}

TEST(Hiranandani, SingleProcessorMachine) {
  // p = 1 exercises the wrap-overshoot path (the window is the whole row).
  const BlockCyclic dist(1, 8);
  for (i64 s : {1, 3, 5, 7}) {
    for (i64 l : {0, 2}) {
      EXPECT_EQ(hiranandani_access_pattern(dist, l, s, 0),
                oracle_access_pattern(dist, l, s, 0))
          << s << " " << l;
    }
  }
}

TEST(Oracle, LocalSequenceAscendingAndDescending) {
  const BlockCyclic dist(2, 3);
  const RegularSection up{0, 29, 4};   // 0 4 8 ... 28
  const RegularSection down{28, 0, -4};
  for (i64 m = 0; m < 2; ++m) {
    const auto a = oracle_local_sequence(dist, up, m);
    auto b = oracle_local_sequence(dist, down, m);
    std::reverse(b.begin(), b.end());
    EXPECT_EQ(a, b) << m;
  }
}

TEST(Oracle, PatternPeriodicityHolds) {
  // Walking the oracle gap table from the start must land exactly on the
  // oracle's own enumerated accesses for several periods.
  const BlockCyclic dist(3, 4);
  const i64 s = 5;
  for (i64 m = 0; m < 3; ++m) {
    const AccessPattern pat = oracle_access_pattern(dist, 2, s, m);
    if (pat.empty()) continue;
    const RegularSection sec{2, 2 + 200 * s, s};
    const auto seq = oracle_local_sequence(dist, sec, m);
    ASSERT_GE(static_cast<i64>(seq.size()), 3 * pat.length);
    i64 addr = pat.start_local;
    for (std::size_t i = 0; i < static_cast<std::size_t>(3 * pat.length); ++i) {
      EXPECT_EQ(seq[i].local, addr) << i;
      addr += pat.gaps[i % pat.gaps.size()];
    }
  }
}

}  // namespace
}  // namespace cyclick
