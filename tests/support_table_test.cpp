// Tests for the TextTable formatter used by the benchmark harnesses.
#include <gtest/gtest.h>

#include <sstream>

#include "cyclick/support/table.hpp"

namespace cyclick {
namespace {

TEST(TextTable, AlignedPrintContainsAllCells) {
  TextTable t({"k", "Lattice", "Sorting"});
  t.add_row({"4", "48", "56"});
  t.add_row({"512", "614", "5550"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  for (const char* cell : {"k", "Lattice", "Sorting", "4", "48", "56", "512", "614", "5550"})
    EXPECT_NE(out.find(cell), std::string::npos) << cell;
  // Header rule present.
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(TextTable, CsvOutput) {
  TextTable t({"a", "b"});
  t.add_row({"1", "2"});
  t.add_row({"3", "4"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n3,4\n");
}

TEST(TextTable, ArityMismatchRejected) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), precondition_error);
}

TEST(TextTable, EmptyHeaderRejected) {
  EXPECT_THROW(TextTable({}), precondition_error);
}

TEST(TextTable, NumberFormatting) {
  EXPECT_EQ(TextTable::num(-42), "-42");
  EXPECT_EQ(TextTable::fixed(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::fixed(2.0, 0), "2");
}

TEST(TextTable, RowAndColCounts) {
  TextTable t({"x", "y", "z"});
  EXPECT_EQ(t.cols(), 3u);
  EXPECT_EQ(t.rows(), 0u);
  t.add_row({"1", "2", "3"});
  EXPECT_EQ(t.rows(), 1u);
}

}  // namespace
}  // namespace cyclick
