// Tests for coupled-subscript (two index variable) access enumeration and
// the hoisted row-plan tables.
#include <gtest/gtest.h>

#include "cyclick/core/coupled.hpp"

namespace cyclick {
namespace {

// Ground truth: walk the loop nest literally.
std::vector<CoupledAccess> brute_nest(const BlockCyclic& dist, const LoopNest2& nest,
                                      const CoupledSubscript& sub, i64 proc) {
  std::vector<CoupledAccess> out;
  for (i64 t1 = 0; t1 < nest.outer.size(); ++t1) {
    const i64 i1 = nest.outer.element(t1);
    for (i64 t2 = 0; t2 < nest.inner.size(); ++t2) {
      const i64 i2 = nest.inner.element(t2);
      const i64 g = sub.value(i1, i2);
      if (dist.owner(g) == proc) out.push_back({i1, i2, g, dist.local_index(g)});
    }
  }
  return out;
}

TEST(CoupledSubscript, MatchesBruteForceSweep) {
  for (i64 p : {1, 2, 4}) {
    for (i64 k : {2, 4, 8}) {
      const BlockCyclic dist(p, k);
      const struct {
        LoopNest2 nest;
        CoupledSubscript sub;
      } cases[] = {
          {{{0, 9, 1}, {0, 19, 1}}, {20, 1, 0}},    // row-major 10x20 walk
          {{{0, 9, 1}, {0, 19, 2}}, {20, 1, 3}},    // strided inner
          {{{1, 17, 3}, {2, 40, 5}}, {7, 3, 11}},   // both strided, coupled coeffs
          {{{0, 5, 1}, {0, 30, 3}}, {4, 2, 0}},     // overlapping rows (c1 < c2*span)
          {{{0, 7, 2}, {19, 1, -2}}, {25, 1, 5}},   // descending inner loop
          {{{0, 4, 1}, {0, 12, 1}}, {13, -1, 40}},  // negative inner coefficient
      };
      for (const auto& c : cases) {
        for (i64 m = 0; m < p; ++m) {
          const auto want = brute_nest(dist, c.nest, c.sub, m);
          const auto got = coupled_access_list(dist, c.nest, c.sub, m);
          ASSERT_EQ(got, want) << "p=" << p << " k=" << k << " m=" << m << " c1=" << c.sub.c1
                               << " c2=" << c.sub.c2;
        }
      }
    }
  }
}

TEST(CoupledSubscript, TotalAccessesPartitionTheNest) {
  const BlockCyclic dist(4, 8);
  const LoopNest2 nest{{0, 29, 1}, {0, 49, 1}};
  const CoupledSubscript sub{50, 1, 0};
  i64 total = 0;
  for (i64 m = 0; m < 4; ++m)
    total += for_each_coupled_access(dist, nest, sub, m, [](const CoupledAccess&) {});
  EXPECT_EQ(total, nest.outer.size() * nest.inner.size());
}

TEST(FullOffsetTables, AgreeWithPerProcessorTablesOnPopulatedEntries) {
  for (i64 p : {2, 4}) {
    for (i64 k : {4, 8, 16}) {
      const BlockCyclic dist(p, k);
      for (i64 s : {1, 3, 7, 9, 15, 33}) {
        const OffsetTables full = compute_full_offset_tables(dist, s);
        ASSERT_EQ(full.start_offset, -1);
        for (i64 m = 0; m < p; ++m) {
          for (i64 l : {0, 1, 5}) {
            const OffsetTables per = compute_offset_tables(dist, l, s, m);
            if (per.empty()) continue;
            for (i64 q = 0; q < k; ++q) {
              if (per.next_offset[static_cast<std::size_t>(q)] < 0) continue;  // unpopulated
              EXPECT_EQ(full.delta[static_cast<std::size_t>(q)],
                        per.delta[static_cast<std::size_t>(q)])
                  << p << " " << k << " " << s << " m=" << m << " l=" << l << " q=" << q;
              EXPECT_EQ(full.next_offset[static_cast<std::size_t>(q)],
                        per.next_offset[static_cast<std::size_t>(q)])
                  << p << " " << k << " " << s << " m=" << m << " l=" << l << " q=" << q;
            }
          }
        }
      }
    }
  }
}

TEST(FullOffsetTables, DegenerateLatticeSelfLoops) {
  const BlockCyclic dist(4, 8);  // pk = 32
  const OffsetTables full = compute_full_offset_tables(dist, 64);  // pk | s
  for (i64 q = 0; q < 8; ++q) {
    EXPECT_EQ(full.delta[static_cast<std::size_t>(q)], 8 * 2);
    EXPECT_EQ(full.next_offset[static_cast<std::size_t>(q)], q);
  }
}

TEST(CoupledRowPlan, WalkingPlanReproducesAccesses) {
  const BlockCyclic dist(4, 8);
  const LoopNest2 nest{{0, 11, 1}, {0, 25, 1}};
  const CoupledSubscript sub{31, 2, 5};  // rows start in shifting residue classes
  const i64 stride = sub.c2 * nest.inner.stride;
  for (i64 m = 0; m < 4; ++m) {
    const CoupledRowPlan plan = plan_coupled_rows(dist, nest, sub, m);
    const auto want = brute_nest(dist, nest, sub, m);
    std::vector<CoupledAccess> got;
    for (i64 t1 = 0; t1 < nest.outer.size(); ++t1) {
      const i64 start = plan.row_start[static_cast<std::size_t>(t1)];
      if (start < 0) continue;
      const i64 i1 = nest.outer.element(t1);
      const i64 row_first = sub.value(i1, nest.inner.lower);
      const i64 row_last = sub.value(i1, nest.inner.last());
      i64 g = start;
      i64 local = plan.row_start_local[static_cast<std::size_t>(t1)];
      i64 q = dist.block_offset(g);
      while (g <= row_last) {
        const i64 i2 = nest.inner.lower + ((g - row_first) / stride) * nest.inner.stride;
        got.push_back({i1, i2, g, local});
        // Advance via the shared tables: local memory by delta, the global
        // subscript by the matching element count (delta rows & offsets).
        const i64 gap = plan.tables.delta[static_cast<std::size_t>(q)];
        const i64 next_q = plan.tables.next_offset[static_cast<std::size_t>(q)];
        // Global advance: gap = a*k + (next_q - q)  =>  rows a, offsets diff.
        const i64 rows_adv = (gap - (next_q - q)) / dist.block_size();
        g += rows_adv * dist.row_length() + (next_q - q);
        local += gap;
        q = next_q;
      }
    }
    EXPECT_EQ(got, want) << "m=" << m;
  }
}

TEST(CoupledRowPlan, ActiveRowCount) {
  const BlockCyclic dist(4, 8);
  // Inner loop touches one element per row: row i1 hits processor
  // owner(32*i1), so only ranks whose blocks are hit have active rows.
  const LoopNest2 nest{{0, 7, 1}, {0, 0, 1}};
  const CoupledSubscript sub{32, 1, 0};
  i64 total_active = 0;
  for (i64 m = 0; m < 4; ++m) total_active += plan_coupled_rows(dist, nest, sub, m).active_rows();
  EXPECT_EQ(total_active, 8);
}

TEST(CoupledRowPlan, RejectsDescendingRows) {
  const BlockCyclic dist(2, 4);
  const LoopNest2 nest{{0, 3, 1}, {0, 9, 1}};
  EXPECT_THROW(plan_coupled_rows(dist, nest, CoupledSubscript{5, -1, 20}, 0),
               precondition_error);
}

}  // namespace
}  // namespace cyclick
