// Plan-service tests: the sharded concurrent cache (unit, differential
// against the single-mutex oracle, multi-threaded hammer for the TSan leg),
// the sharded-cache-backed AddressEngine's byte-parity with the historical
// single-mutex discipline, and the daemon + client end to end — answers
// match locally built truth, repeats hit the cache, concurrent clients,
// version-mismatch rejection, and per-entry query errors.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <random>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "cyclick/core/engine.hpp"
#include "cyclick/runtime/comm_plan.hpp"
#include "cyclick/runtime/distributed_array.hpp"
#include "cyclick/runtime/plan_cache.hpp"
#include "cyclick/runtime/transport.hpp"
#include "cyclick/serve/client.hpp"
#include "cyclick/serve/protocol.hpp"
#include "cyclick/serve/service.hpp"
#include "cyclick/support/shard_cache.hpp"

namespace cyclick::serve {
namespace {

// --- ShardedCache unit behavior --------------------------------------------

TEST(ShardCache, AutoShardCountScalesWithCapacity) {
  EXPECT_EQ(auto_shard_count(1), 1u);
  EXPECT_EQ(auto_shard_count(16), 1u);
  EXPECT_EQ(auto_shard_count(31), 1u);
  EXPECT_EQ(auto_shard_count(32), 2u);
  EXPECT_EQ(auto_shard_count(256), 16u);
  EXPECT_EQ(auto_shard_count(1024), 64u);
  EXPECT_EQ(auto_shard_count(1u << 20), 64u);  // capped
}

TEST(ShardCache, HitsMissesAndKeepExistingInsert) {
  ShardedCache<int, int> cache(8, 1);
  EXPECT_EQ(cache.find(1), nullptr);
  auto a = cache.insert(1, std::make_shared<const int>(10));
  EXPECT_EQ(*a, 10);
  // Keep-existing: a second insert under the same key returns the first
  // value, the canonical-object guarantee racing builders rely on.
  auto b = cache.insert(1, std::make_shared<const int>(99));
  EXPECT_EQ(b.get(), a.get());
  auto hit = cache.find(1);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit.get(), a.get());
  const auto st = cache.stats();
  EXPECT_EQ(st.hits, 1);
  EXPECT_EQ(st.misses, 1);
  EXPECT_EQ(st.evictions, 0);
  EXPECT_EQ(st.size, 1u);
}

TEST(ShardCache, SingleShardEvictsExactLru) {
  ShardedCache<int, int> cache(2, 1);
  (void)cache.insert(1, std::make_shared<const int>(1));
  (void)cache.insert(2, std::make_shared<const int>(2));
  auto kept = cache.find(1);  // refresh 1 so 2 is the LRU victim
  ASSERT_NE(kept, nullptr);
  bool evicted = false;
  (void)cache.insert(3, std::make_shared<const int>(3), &evicted);
  EXPECT_TRUE(evicted);
  EXPECT_EQ(cache.find(2), nullptr);  // evicted
  EXPECT_NE(cache.find(1), nullptr);
  EXPECT_NE(cache.find(3), nullptr);
  EXPECT_EQ(cache.stats().evictions, 1);
  EXPECT_EQ(cache.stats().size, 2u);
  EXPECT_EQ(*kept, 1);  // evictable != destroyed while a holder remains
}

TEST(ShardCache, GenerationTracksContentNotRecency) {
  ShardedCache<int, int> cache(8, 1);
  const u64 g0 = cache.stats().generation;
  (void)cache.insert(1, std::make_shared<const int>(1));
  const u64 g1 = cache.stats().generation;
  EXPECT_GT(g1, g0);
  // Pure hits must not move the content generation: a snapshot reader that
  // sees the same generation across its reads saw one consistent key set.
  for (int i = 0; i < 100; ++i) ASSERT_NE(cache.find(1), nullptr);
  EXPECT_EQ(cache.stats().generation, g1);
  EXPECT_EQ(cache.shard_generation(1), g1);
  cache.clear();
  EXPECT_GT(cache.stats().generation, g1);
}

TEST(ShardCache, CapacitySplitsAcrossShards) {
  ShardedCache<int, int> cache(64, 4);
  EXPECT_EQ(cache.shard_count(), 4u);
  EXPECT_EQ(cache.capacity(), 64u);
  for (int i = 0; i < 1000; ++i) (void)cache.insert(i, std::make_shared<const int>(i));
  // Per-shard eviction keeps every shard at <= ceil(64/4); total <= 64.
  EXPECT_LE(cache.stats().size, 64u);
  EXPECT_GT(cache.stats().evictions, 0);
}

// --- differential: 1-shard ShardedCache vs the single-mutex oracle ---------

TEST(ShardCache, DifferentialAgainstSingleMutexOracle) {
  // Random find/insert streams: a 1-shard ShardedCache must reproduce the
  // classic splice-LRU discipline event for event — same hit/miss/eviction
  // stream, same surviving key set.
  std::mt19937 rng(20260808);
  for (int round = 0; round < 20; ++round) {
    const std::size_t cap = 1 + static_cast<std::size_t>(rng() % 8);
    ShardedCache<int, int> sharded(cap, 1);
    SingleMutexLruCache<int, int> oracle(cap);
    for (int op = 0; op < 400; ++op) {
      const int key = static_cast<int>(rng() % 16);
      if (rng() % 2 == 0) {
        const auto a = sharded.find(key);
        const auto b = oracle.find(key);
        ASSERT_EQ(a == nullptr, b == nullptr) << "round " << round << " op " << op;
        if (a != nullptr) {
          ASSERT_EQ(*a, *b);
        }
      } else {
        auto value = std::make_shared<const int>(key * 1000 + op);
        const auto a = sharded.insert(key, value);
        const auto b = oracle.insert(key, value);
        ASSERT_EQ(*a, *b) << "round " << round << " op " << op;
      }
      const auto sa = sharded.stats();
      const auto sb = oracle.stats();
      ASSERT_EQ(sa.hits, sb.hits);
      ASSERT_EQ(sa.misses, sb.misses);
      ASSERT_EQ(sa.evictions, sb.evictions);
      ASSERT_EQ(sa.size, sb.size);
    }
  }
}

// --- multi-threaded hammer (the TSan leg's target) -------------------------

TEST(ShardCache, ConcurrentHammerStaysCoherent) {
  // Concurrent get/insert/evict across shards plus generation-snapshot
  // readers. Correctness here is coherence, not exact counts: size within
  // capacity, counters consistent, every returned value intact.
  ShardedCache<i64, i64> cache(128, 8);
  constexpr int kThreads = 8;
  constexpr i64 kOpsPerThread = 4000;
  std::atomic<i64> bad_values{0};
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&cache, &bad_values, t] {
      std::mt19937_64 rng(static_cast<u64>(t) * 7919 + 17);
      for (i64 op = 0; op < kOpsPerThread; ++op) {
        const i64 key = static_cast<i64>(rng() % 512);  // 4x capacity: evictions happen
        switch (rng() % 4) {
          case 0: {
            // Snapshot read: the generation bracket must be monotonic and
            // the relaxed size mirror can never exceed total capacity.
            const u64 g_before = cache.shard_generation(key);
            const auto st = cache.stats();
            const u64 g_after = cache.shard_generation(key);
            if (g_after < g_before || st.size > 128) bad_values.fetch_add(1);
            break;
          }
          case 1:
          case 2: {
            const auto hit = cache.find(key);
            if (hit != nullptr && *hit != key * 3) bad_values.fetch_add(1);
            break;
          }
          default:
            (void)cache.insert(key, std::make_shared<const i64>(key * 3));
            break;
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(bad_values.load(), 0);
  const auto st = cache.stats();
  EXPECT_LE(st.size, 128u);
  EXPECT_EQ(st.hits + st.misses, [&] {
    // find() calls: cases 1 and 2 of 4 — recompute the expected total.
    i64 finds = 0;
    for (int t = 0; t < kThreads; ++t) {
      std::mt19937_64 rng(static_cast<u64>(t) * 7919 + 17);
      for (i64 op = 0; op < kOpsPerThread; ++op) {
        (void)(rng() % 512);
        const auto c = rng() % 4;
        if (c == 1 || c == 2) ++finds;
      }
    }
    return finds;
  }());
}

// --- sharded AddressEngine parity against the 1-shard (oracle) engine ------

TEST(ServeEngine, ShardedEngineMatchesSingleShardByteForByte) {
  // The same (p, k, s) grid through a striped engine and a 1-shard engine
  // (the old single-mutex semantics): every table field and every
  // enumerated (global, local) pair must be identical.
  AddressEngine sharded(256, 32);
  AddressEngine single(256, 1);
  EXPECT_EQ(sharded.cache_shards(), 32u);
  EXPECT_EQ(single.cache_shards(), 1u);
  for (const i64 p : {2, 3, 7}) {
    for (const i64 k : {1, 3, 8}) {
      for (const i64 s : {1, 2, 9, 35, -9}) {
        const BlockCyclic dist(p, k);
        const auto a = sharded.tables(dist, s);
        const auto b = single.tables(dist, s);
        ASSERT_EQ(a->procs, b->procs);
        ASSERT_EQ(a->block, b->block);
        ASSERT_EQ(a->stride, b->stride);
        ASSERT_EQ(a->strategy, b->strategy);
        ASSERT_EQ(a->degenerate, b->degenerate);
        ASSERT_EQ(a->fixed_dglobal, b->fixed_dglobal);
        ASSERT_EQ(a->fixed_dlocal, b->fixed_dlocal);
        ASSERT_EQ(a->offsets.start_offset, b->offsets.start_offset);
        ASSERT_EQ(a->offsets.delta, b->offsets.delta);
        ASSERT_EQ(a->offsets.next_offset, b->offsets.next_offset);
        ASSERT_EQ(a->dglobal, b->dglobal);
        ASSERT_EQ(a->prev_offset, b->prev_offset);
        // And the serialized reply blobs — the daemon's currency — agree.
        ASSERT_EQ(serialize_tables(*a), serialize_tables(*b));
        const RegularSection sec = s > 0 ? RegularSection{0, 300, s}
                                         : RegularSection{300, 0, s};
        for (i64 m = 0; m < p; ++m) {
          const SectionPlan pa = sharded.plan(dist, sec, m);
          const SectionPlan pb = single.plan(dist, sec, m);
          std::vector<std::pair<i64, i64>> ea, eb;
          (void)pa.for_each([&ea](i64 g, i64 la) { ea.emplace_back(g, la); });
          (void)pb.for_each([&eb](i64 g, i64 la) { eb.emplace_back(g, la); });
          ASSERT_EQ(ea, eb) << "p=" << p << " k=" << k << " s=" << s << " m=" << m;
        }
      }
    }
  }
  // Identical query stream => identical hit/miss totals (eviction-free run).
  const auto sa = sharded.cache_stats();
  const auto sb = single.cache_stats();
  EXPECT_EQ(sa.hits, sb.hits);
  EXPECT_EQ(sa.misses, sb.misses);
  EXPECT_EQ(sa.size, sb.size);
}

TEST(ServeEngine, ShardedPlanCachePreservesStatsContract) {
  // PlanCache's sharded rewiring at small capacity keeps the exact LRU
  // stats the comm_plan tests pin; at large capacity it stripes.
  PlanCache small(1);
  EXPECT_EQ(small.shard_count(), 1u);
  PlanCache large(1024);
  EXPECT_GT(large.shard_count(), 1u);
  EXPECT_EQ(large.capacity(), 1024u);
}

// --- protocol codecs --------------------------------------------------------

TEST(ServeProtocol, QueryBatchRoundTrips) {
  std::vector<PlanQuery> qs(3);
  qs[0] = PlanQuery{static_cast<i64>(QueryKind::kTables), 4, 8, 9, 0, 0, 0};
  qs[1] = PlanQuery{static_cast<i64>(QueryKind::kCopyPlan), 4, 3, 2, 0, 199, 8};
  qs[2] = PlanQuery{static_cast<i64>(QueryKind::kTables), 7, 3, -5, 0, 0, 0};
  const auto payload = encode_queries(qs);
  std::string err;
  const auto back = decode_queries(payload, err);
  ASSERT_TRUE(back.has_value()) << err;
  EXPECT_EQ(*back, qs);

  // Truncated payloads are rejected, not misparsed.
  std::vector<std::byte> cut(payload.begin(), payload.end() - 8);
  EXPECT_FALSE(decode_queries(cut, err).has_value());
}

namespace {
/// Little-endian i64 append, mirroring the wire codec (the encoder's helper
/// is internal to protocol.cpp).
void append_i64(std::vector<std::byte>& out, i64 v) {
  const u64 u = static_cast<u64>(v);
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<std::byte>((u >> (8 * i)) & 0xff));
}
}  // namespace

TEST(ServeProtocol, WrappingQueryCountIsRejectedNotAllocated) {
  // 56 * 2^61 == 0 mod 2^64 and 56 * (2^61 + 1) == 56 mod 2^64: under a
  // multiplicative size check either count would "validate" against a tiny
  // payload and drive a 2^61-element allocation. Both must be rejected.
  std::string err;
  std::vector<std::byte> empty_records;
  append_i64(empty_records, i64{1} << 61);
  EXPECT_FALSE(decode_queries(empty_records, err).has_value());

  std::vector<std::byte> one_record;
  append_i64(one_record, (i64{1} << 61) + 1);
  for (int f = 0; f < 7; ++f) append_i64(one_record, 0);
  EXPECT_FALSE(decode_queries(one_record, err).has_value());
}

TEST(ServeProtocol, OversizedBatchIsRejectedByName) {
  // A structurally valid batch one past the limit: rejected with the limit
  // named, before any per-query work.
  std::vector<std::byte> payload;
  const i64 n = kMaxBatchQueries + 1;
  append_i64(payload, n);
  payload.resize(8 + static_cast<std::size_t>(n) * kQueryBytes);
  std::string err;
  EXPECT_FALSE(decode_queries(payload, err).has_value());
  EXPECT_NE(err.find("exceeds"), std::string::npos) << err;
}

TEST(ServeProtocol, TablesBlobRoundTripsThroughDecodeResponse) {
  const BlockCyclic dist(4, 8);
  const auto tables = AddressEngine::global().tables(dist, 9);
  const auto blob = serialize_tables(*tables);
  const auto payload = encode_response({blob});
  std::string err;
  const auto entries = decode_response(payload, {QueryKind::kTables}, err);
  ASSERT_TRUE(entries.has_value()) << err;
  ASSERT_EQ(entries->size(), 1u);
  const ReplyEntry& e = entries->front();
  EXPECT_EQ(e.status, 0);
  EXPECT_EQ(e.tables.procs, 4);
  EXPECT_EQ(e.tables.block, 8);
  EXPECT_EQ(e.tables.stride, 9);
  EXPECT_EQ(e.tables.strategy, static_cast<i64>(tables->strategy));
  EXPECT_EQ(e.tables.delta, tables->offsets.delta);
  EXPECT_EQ(e.tables.next_offset, tables->offsets.next_offset);
  EXPECT_EQ(e.tables.dglobal, tables->dglobal);
  EXPECT_EQ(e.tables.prev_offset, tables->prev_offset);
}

TEST(ServeProtocol, PlanBlobCarriesRunDescriptors) {
  const SpmdExecutor exec(4);
  const RegularSection ssec{0, 199, 2};
  const RegularSection dsec{0, 99, 1};
  const DistributedArray<double> src(BlockCyclic(4, 3), 200);
  DistributedArray<double> dst(BlockCyclic(4, 8), 100);
  const CommPlan plan = build_copy_plan(src, ssec, dst, dsec, exec);
  const auto payload = encode_response({serialize_plan(plan)});
  std::string err;
  const auto entries = decode_response(payload, {QueryKind::kCopyPlan}, err);
  ASSERT_TRUE(entries.has_value()) << err;
  const WirePlan& wp = entries->front().plan;
  EXPECT_EQ(wp.ranks, plan.ranks);
  ASSERT_EQ(wp.channels.size(), plan.channels.size());
  for (std::size_t i = 0; i < wp.channels.size(); ++i) {
    EXPECT_EQ(wp.channels[i].count, plan.channels[i].count);
    EXPECT_EQ(wp.channels[i].src_start, plan.channels[i].src_start);
    EXPECT_EQ(wp.channels[i].dst_start, plan.channels[i].dst_start);
    EXPECT_EQ(wp.channels[i].period, plan.channels[i].period);
  }
  EXPECT_EQ(wp.src_off, plan.src_off);
  EXPECT_EQ(wp.dst_off, plan.dst_off);
  EXPECT_EQ(wp.message_count, plan.message_count());
  EXPECT_EQ(wp.remote_elements, plan.remote_elements());
  EXPECT_EQ(wp.total_elements, plan.total_elements());
}

TEST(ServeProtocol, ScanResponseCountsWithoutDecoding) {
  const auto payload =
      encode_response({serialize_error(1, "nope"), serialize_tables(EngineTables{}),
                       serialize_error(2, "also nope")});
  i64 ok = 0, bad = 0;
  ASSERT_TRUE(scan_response(payload, ok, bad));
  EXPECT_EQ(ok, 1);
  EXPECT_EQ(bad, 2);
}

// --- PlanService (transport-free) ------------------------------------------

TEST(PlanService, CachesSerializedRepliesAndRejectsInvalidQueries) {
  PlanService service(64, 4);
  PlanQuery q;
  q.kind = static_cast<i64>(QueryKind::kTables);
  q.procs = 4;
  q.block = 8;
  q.stride = 9;
  const auto first = service.answer(q);
  const auto second = service.answer(q);
  EXPECT_EQ(first.get(), second.get());  // cache hit returns the same blob
  const auto st = service.cache_stats();
  EXPECT_EQ(st.hits, 1);
  EXPECT_EQ(st.misses, 1);

  PlanQuery bad = q;
  bad.procs = kMaxServeProcs + 1;
  const auto err_blob = service.answer(bad);
  ASSERT_GE(err_blob->size(), 8u);
  EXPECT_NE((*err_blob)[0], std::byte{0});      // nonzero status
  EXPECT_EQ(service.cache_stats().size, 1u);    // error replies are not cached
}

// --- daemon + client end to end --------------------------------------------

struct DaemonHarness {
  std::string dir;
  ServeDaemon daemon;

  static std::string make_dir() {
    std::string tmpl = ::testing::TempDir() + "cyclick-serve-XXXXXX";
    std::vector<char> buf(tmpl.begin(), tmpl.end());
    buf.push_back('\0');
    if (::mkdtemp(buf.data()) == nullptr) throw std::runtime_error("mkdtemp failed");
    return std::string(buf.data());
  }

  explicit DaemonHarness(std::size_t cap = 1024, std::size_t shards = 8)
      : dir(make_dir()),
        daemon(ServeDaemon::Options{dir + "/plan.sock", cap, shards}) {
    daemon.start();
  }

  ~DaemonHarness() {
    daemon.stop();
    std::error_code ec;
    std::filesystem::remove_all(dir, ec);
  }
};

TEST(ServeDaemon, AnswersTablesQueriesMatchingLocalTruth) {
  DaemonHarness h;
  PlanClient client(h.daemon.socket_path());
  const auto reply = client.query_tables(4, 8, 9);
  ASSERT_EQ(reply.status, 0) << reply.error;
  const auto truth = AddressEngine::global().tables(BlockCyclic(4, 8), 9);
  EXPECT_EQ(reply.tables.procs, 4);
  EXPECT_EQ(reply.tables.delta, truth->offsets.delta);
  EXPECT_EQ(reply.tables.next_offset, truth->offsets.next_offset);
  EXPECT_EQ(reply.tables.dglobal, truth->dglobal);
  EXPECT_EQ(reply.tables.strategy, static_cast<i64>(truth->strategy));
}

TEST(ServeDaemon, AnswersCopyPlanQueriesMatchingLocalTruth) {
  DaemonHarness h;
  PlanClient client(h.daemon.socket_path());
  const auto reply = client.query_copy_plan(4, 3, 0, 199, 2, 8);
  ASSERT_EQ(reply.status, 0) << reply.error;
  const SpmdExecutor exec(4);
  const RegularSection ssec{0, 199, 2};
  const RegularSection dsec{0, ssec.size() - 1, 1};
  const DistributedArray<double> src(BlockCyclic(4, 3), 200);
  DistributedArray<double> dst(BlockCyclic(4, 8), ssec.size());
  const CommPlan plan = build_copy_plan(src, ssec, dst, dsec, exec);
  EXPECT_EQ(reply.plan.ranks, plan.ranks);
  EXPECT_EQ(reply.plan.src_off, plan.src_off);
  EXPECT_EQ(reply.plan.dst_off, plan.dst_off);
  EXPECT_EQ(reply.plan.total_elements, plan.total_elements());
  ASSERT_EQ(reply.plan.channels.size(), plan.channels.size());
  for (std::size_t i = 0; i < plan.channels.size(); ++i) {
    EXPECT_EQ(reply.plan.channels[i].count, plan.channels[i].count);
    EXPECT_EQ(reply.plan.channels[i].src_start, plan.channels[i].src_start);
    EXPECT_EQ(reply.plan.channels[i].dst_start, plan.channels[i].dst_start);
  }
}

TEST(ServeDaemon, BatchedRepeatsHitTheReplyCache) {
  DaemonHarness h;
  PlanClient client(h.daemon.socket_path());
  std::vector<PlanQuery> batch;
  for (i64 i = 0; i < 16; ++i) {
    PlanQuery q;
    q.kind = static_cast<i64>(QueryKind::kTables);
    q.procs = 2 + (i % 4);
    q.block = 3 + (i % 3);
    q.stride = 5 + (i % 5);
    batch.push_back(q);
  }
  i64 ok = 0, bad = 0;
  (void)client.query_raw(batch, ok, bad);
  EXPECT_EQ(ok, 16);
  EXPECT_EQ(bad, 0);
  const auto cold = h.daemon.service().cache_stats();
  (void)client.query_raw(batch, ok, bad);
  EXPECT_EQ(ok, 16);
  const auto warm = h.daemon.service().cache_stats();
  EXPECT_EQ(warm.misses, cold.misses);        // second pass built nothing
  EXPECT_EQ(warm.hits, cold.hits + 16);
}

TEST(ServeDaemon, InvalidQueriesYieldErrorEntriesNotDisconnects) {
  DaemonHarness h;
  PlanClient client(h.daemon.socket_path());
  PlanQuery good;
  good.kind = static_cast<i64>(QueryKind::kTables);
  good.procs = 4;
  good.block = 8;
  good.stride = 9;
  PlanQuery bad = good;
  bad.stride = 0;
  const auto entries = client.query({good, bad, good});
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].status, 0);
  EXPECT_NE(entries[1].status, 0);
  EXPECT_NE(entries[1].error.find("stride"), std::string::npos) << entries[1].error;
  EXPECT_EQ(entries[2].status, 0);
  // The connection survived the error entries:
  const auto again = client.query_tables(4, 8, 9);
  EXPECT_EQ(again.status, 0);
}

TEST(ServeDaemon, VersionMismatchedClientGetsNamedRejection) {
  DaemonHarness h;
  PlanClient::Options opt;
  opt.advertise_version = 99;
  try {
    PlanClient client(h.daemon.socket_path(), opt);
    FAIL() << "handshake with an unsupported version must be rejected";
  } catch (const TransportError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("unsupported protocol version 99"), std::string::npos) << what;
  }
}

TEST(ServeDaemon, HostileFramesCloseOneConnectionNotTheDaemon) {
  DaemonHarness h;
  // A header claiming a payload over the request ceiling: the daemon must
  // drop that connection (never sizing a buffer to the claim) and keep
  // serving everyone else.
  {
    net::Fd raw = net::unix_connect_retry(h.daemon.socket_path(), 2000, 1, 0);
    send_frame(raw.get(), net::FrameType::kHello, nullptr, 0);
    ASSERT_TRUE(recv_frame(raw.get()).has_value());
    net::FrameHeader huge;
    huge.type = net::FrameType::kPlanRequest;
    huge.payload_bytes = kMaxRequestPayloadBytes + 1;
    std::byte hdr[net::kHeaderBytes];
    net::encode_header(huge, hdr);
    net::write_fully(raw.get(), hdr, net::kHeaderBytes);
    // The server closes without replying; our next read sees EOF (or a
    // reset if the close races the read).
    try {
      EXPECT_FALSE(recv_frame(raw.get()).has_value());
    } catch (const TransportError&) {
    }
  }
  // A count field chosen so that count * 56 wraps mod 2^64 to the actual
  // payload size: rejected as malformed, with the error named in a reply.
  {
    net::Fd raw = net::unix_connect_retry(h.daemon.socket_path(), 2000, 1, 0);
    send_frame(raw.get(), net::FrameType::kHello, nullptr, 0);
    ASSERT_TRUE(recv_frame(raw.get()).has_value());
    std::vector<std::byte> wrap;
    append_i64(wrap, i64{1} << 61);
    send_frame(raw.get(), net::FrameType::kPlanRequest, wrap.data(), wrap.size());
    const auto reply = recv_frame(raw.get());
    ASSERT_TRUE(reply.has_value());
    EXPECT_EQ(reply->header.type, net::FrameType::kError);
    const std::string text(reinterpret_cast<const char*>(reply->payload.data()),
                           reply->payload.size());
    EXPECT_NE(text.find("malformed plan request"), std::string::npos) << text;
  }
  // The daemon survived both and still answers a well-behaved client.
  PlanClient client(h.daemon.socket_path());
  EXPECT_EQ(client.query_tables(4, 8, 9).status, 0);
}

TEST(ServeDaemon, FinishedConnectionsAreReaped) {
  DaemonHarness h;
  for (int i = 0; i < 12; ++i) {
    PlanClient client(h.daemon.socket_path());
    (void)client.query_tables(2 + (i % 3), 4, 7);
  }
  EXPECT_GE(h.daemon.accepted(), 12);
  // Every client above has disconnected; the accept loop's reap tick must
  // drain conns_ (joining the threads, closing the fds) rather than holding
  // one fd plus two finished threads per connection forever.
  for (int spin = 0; spin < 100 && h.daemon.live_connections() != 0; ++spin)
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(h.daemon.live_connections(), 0u);
}

TEST(ServeDaemon, ManyConcurrentClientsGetConsistentAnswers) {
  DaemonHarness h;
  const auto truth = AddressEngine::global().tables(BlockCyclic(4, 8), 9);
  constexpr int kClients = 8;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&h, &truth, &mismatches] {
      PlanClient client(h.daemon.socket_path());
      for (int round = 0; round < 20; ++round) {
        const auto reply = client.query_tables(4, 8, 9);
        if (reply.status != 0 || reply.tables.delta != truth->offsets.delta)
          mismatches.fetch_add(1);
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_GE(h.daemon.accepted(), kClients);
  const auto st = h.daemon.service().cache_stats();
  EXPECT_EQ(st.hits + st.misses, kClients * 20);
  // Clients racing through the first cold lookup can each miss once, but
  // after that every answer is a cache hit of the one canonical blob.
  EXPECT_GE(st.misses, 1);
  EXPECT_LE(st.misses, kClients);
}

}  // namespace
}  // namespace cyclick::serve
