// Tests for the simulated SPMD executor.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "cyclick/runtime/spmd.hpp"

namespace cyclick {
namespace {

TEST(SpmdExecutor, SequentialRunsEveryRankOnce) {
  const SpmdExecutor exec(7, SpmdExecutor::Mode::kSequential);
  std::vector<int> hits(7, 0);
  exec.run([&](i64 r) { ++hits[static_cast<std::size_t>(r)]; });
  for (const int h : hits) EXPECT_EQ(h, 1);
}

TEST(SpmdExecutor, ThreadedRunsEveryRankOnce) {
  const SpmdExecutor exec(16, SpmdExecutor::Mode::kThreads);
  std::vector<std::atomic<int>> hits(16);
  exec.run([&](i64 r) { hits[static_cast<std::size_t>(r)].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(SpmdExecutor, RunIsABarrier) {
  // Work done in phase 1 must be visible in phase 2 across all ranks.
  const SpmdExecutor exec(8, SpmdExecutor::Mode::kThreads);
  std::vector<i64> stage1(8, 0);
  exec.run([&](i64 r) { stage1[static_cast<std::size_t>(r)] = r + 1; });
  i64 total = 0;
  exec.run([&](i64 r) {
    if (r == 0) total = std::accumulate(stage1.begin(), stage1.end(), i64{0});
  });
  EXPECT_EQ(total, 36);
}

TEST(SpmdExecutor, ExceptionsPropagate) {
  const SpmdExecutor seq(4, SpmdExecutor::Mode::kSequential);
  EXPECT_THROW(seq.run([](i64 r) {
    if (r == 2) throw std::runtime_error("rank failure");
  }),
               std::runtime_error);
  const SpmdExecutor thr(4, SpmdExecutor::Mode::kThreads);
  EXPECT_THROW(thr.run([](i64 r) {
    if (r == 3) throw std::runtime_error("rank failure");
  }),
               std::runtime_error);
}

TEST(SpmdExecutor, FirstRankExceptionWinsAndAllThreadsJoin) {
  // Exception contract under kThreads: when several ranks throw, run()
  // still joins every thread (no rank's side effect is lost) and the
  // exception that propagates is the throwing rank with the *lowest id*,
  // regardless of which thread fails first in wall-clock order.
  const SpmdExecutor exec(8, SpmdExecutor::Mode::kThreads);
  std::vector<std::atomic<int>> ran(8);
  try {
    exec.run([&](i64 r) {
      ran[static_cast<std::size_t>(r)].fetch_add(1);
      // Rank 6 throws immediately; rank 2 throws after a delay. Rank order
      // must still pick rank 2's exception.
      if (r == 6) throw std::runtime_error("rank 6 failed");
      if (r == 2) {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        throw std::logic_error("rank 2 failed");
      }
    });
    FAIL() << "run() must propagate a rank exception";
  } catch (const std::logic_error& e) {
    EXPECT_STREQ(e.what(), "rank 2 failed");  // lowest throwing rank wins
  } catch (const std::runtime_error&) {
    FAIL() << "rank 6's exception propagated ahead of rank 2's";
  }
  // Every thread was started and joined: each rank ran exactly once.
  for (const auto& h : ran) EXPECT_EQ(h.load(), 1);
}

TEST(SpmdExecutor, RejectsBadRankCount) {
  EXPECT_THROW(SpmdExecutor(0), precondition_error);
  EXPECT_THROW(SpmdExecutor(-2), precondition_error);
}

TEST(SpmdExecutor, SingleRankWorksInBothModes) {
  for (const auto mode : {SpmdExecutor::Mode::kSequential, SpmdExecutor::Mode::kThreads}) {
    const SpmdExecutor exec(1, mode);
    int hits = 0;
    exec.run([&](i64) { ++hits; });
    EXPECT_EQ(hits, 1);
  }
}

}  // namespace
}  // namespace cyclick
