// Tests for the simulated SPMD executor.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "cyclick/runtime/spmd.hpp"

namespace cyclick {
namespace {

TEST(SpmdExecutor, SequentialRunsEveryRankOnce) {
  const SpmdExecutor exec(7, SpmdExecutor::Mode::kSequential);
  std::vector<int> hits(7, 0);
  exec.run([&](i64 r) { ++hits[static_cast<std::size_t>(r)]; });
  for (const int h : hits) EXPECT_EQ(h, 1);
}

TEST(SpmdExecutor, ThreadedRunsEveryRankOnce) {
  const SpmdExecutor exec(16, SpmdExecutor::Mode::kThreads);
  std::vector<std::atomic<int>> hits(16);
  exec.run([&](i64 r) { hits[static_cast<std::size_t>(r)].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(SpmdExecutor, RunIsABarrier) {
  // Work done in phase 1 must be visible in phase 2 across all ranks.
  const SpmdExecutor exec(8, SpmdExecutor::Mode::kThreads);
  std::vector<i64> stage1(8, 0);
  exec.run([&](i64 r) { stage1[static_cast<std::size_t>(r)] = r + 1; });
  i64 total = 0;
  exec.run([&](i64 r) {
    if (r == 0) total = std::accumulate(stage1.begin(), stage1.end(), i64{0});
  });
  EXPECT_EQ(total, 36);
}

TEST(SpmdExecutor, ExceptionsPropagate) {
  const SpmdExecutor seq(4, SpmdExecutor::Mode::kSequential);
  EXPECT_THROW(seq.run([](i64 r) {
    if (r == 2) throw std::runtime_error("rank failure");
  }),
               std::runtime_error);
  const SpmdExecutor thr(4, SpmdExecutor::Mode::kThreads);
  EXPECT_THROW(thr.run([](i64 r) {
    if (r == 3) throw std::runtime_error("rank failure");
  }),
               std::runtime_error);
}

TEST(SpmdExecutor, RejectsBadRankCount) {
  EXPECT_THROW(SpmdExecutor(0), precondition_error);
  EXPECT_THROW(SpmdExecutor(-2), precondition_error);
}

TEST(SpmdExecutor, SingleRankWorksInBothModes) {
  for (const auto mode : {SpmdExecutor::Mode::kSequential, SpmdExecutor::Mode::kThreads}) {
    const SpmdExecutor exec(1, mode);
    int hits = 0;
    exec.run([&](i64) { ++hits; });
    EXPECT_EQ(hits, 1);
  }
}

}  // namespace
}  // namespace cyclick
