// Differential fuzzing of the DSL end to end: generate random 1-D programs
// (fills, strided copies, arithmetic, forall, where, reductions over
// expressions), execute them through lexer->parser->machine under BOTH
// execution tiers, and require (a) each tier matches a simple reference
// simulator driven by the same random choices and (b) the two tiers agree
// byte for byte — the bytecode tier's fused superinstructions must not
// change a single bit relative to the tree-walking interpreter.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "cyclick/compiler/interp.hpp"

namespace cyclick::dsl {
namespace {

struct RefMachine {
  std::vector<double> a, b;
  explicit RefMachine(i64 n) : a(static_cast<std::size_t>(n), 0.0), b(a) {}
};

class ProgramFuzzer {
 public:
  ProgramFuzzer(u64 seed, i64 n) : rng_(seed), n_(n), ref_(n) {
    src_ << "processors P(" << 1 + static_cast<i64>(rng_() % 6) << ")\n";
    src_ << "template T(" << n << ")\n";
    src_ << "distribute T onto P cyclic(" << 1 + static_cast<i64>(rng_() % 9) << ")\n";
    src_ << "array A(" << n << ") align with T(i)\n";
    src_ << "array B(" << n << ") align with T(i)\n";
  }

  void add_random_statement() {
    switch (rng_() % 6) {
      case 0: add_fill(); break;
      case 1: add_copy(); break;
      case 2: add_arith(); break;
      case 3: add_forall(); break;
      case 4: add_reduce(); break;
      default: add_where(); break;
    }
  }

  void run_and_check() {
    const std::string program = src_.str();
    Machine interp;
    interp.set_tier(Tier::kInterp);
    interp.run_source(program);
    Machine bytecode;
    bytecode.set_tier(Tier::kBytecode);
    bytecode.run_source(program);
    // Each tier against the reference model...
    ASSERT_EQ(interp.global_image("A"), ref_.a) << program;
    ASSERT_EQ(interp.global_image("B"), ref_.b) << program;
    // ...and tier against tier, byte for byte.
    ASSERT_EQ(bytecode.global_image("A"), interp.global_image("A")) << program;
    ASSERT_EQ(bytecode.global_image("B"), interp.global_image("B")) << program;
    for (const ScalarCheck& sc : scalar_checks_) {
      const double vi = interp.scalar(sc.name);
      const double vb = bytecode.scalar(sc.name);
      ASSERT_EQ(vb, vi) << sc.name << " differs across tiers\n" << program;
      if (sc.exact) {
        ASSERT_EQ(vi, sc.value) << sc.name << "\n" << program;
      } else {
        // Distributed sums fold per rank before combining, so the
        // association differs from the reference's left-to-right walk.
        ASSERT_NEAR(vi, sc.value, 1e-9 * (1.0 + std::abs(sc.value)))
            << sc.name << "\n" << program;
      }
    }
  }

 private:
  struct Sec {
    i64 lo, hi, st;
    [[nodiscard]] i64 size() const { return (hi - lo) / st + 1; }
    [[nodiscard]] i64 at(i64 t) const { return lo + t * st; }
    [[nodiscard]] std::string str() const {
      std::ostringstream ss;
      ss << '(' << lo << ':' << hi << ':' << st << ')';
      return ss.str();
    }
  };

  Sec random_section() {
    const i64 lo = static_cast<i64>(rng_() % static_cast<u64>(n_ - 1));
    const i64 st = 1 + static_cast<i64>(rng_() % 7);
    const i64 max_count = (n_ - 1 - lo) / st + 1;
    const i64 count = 1 + static_cast<i64>(rng_() % static_cast<u64>(max_count));
    return {lo, lo + (count - 1) * st, st};
  }

  Sec random_section_of_size(i64 count) {
    for (int attempt = 0; attempt < 64; ++attempt) {
      const i64 st = 1 + static_cast<i64>(rng_() % 7);
      if ((count - 1) * st >= n_) continue;
      const i64 max_lo = n_ - 1 - (count - 1) * st;
      const i64 lo = static_cast<i64>(rng_() % static_cast<u64>(max_lo + 1));
      return {lo, lo + (count - 1) * st, st};
    }
    return {0, count - 1, 1};  // guaranteed to fit (count <= n)
  }

  std::vector<double>& pick(bool second) { return second ? ref_.b : ref_.a; }

  void add_fill() {
    const bool tob = rng_() % 2;
    const Sec s = random_section();
    const i64 v = static_cast<i64>(rng_() % 200) - 100;
    src_ << (tob ? "B" : "A") << s.str() << " = " << v << "\n";
    auto& arr = pick(tob);
    for (i64 t = 0; t < s.size(); ++t) arr[static_cast<std::size_t>(s.at(t))] =
        static_cast<double>(v);
  }

  void add_copy() {
    const bool tob = rng_() % 2;
    const bool fromb = rng_() % 2;
    const Sec d = random_section();
    const Sec s = random_section_of_size(d.size());
    src_ << (tob ? "B" : "A") << d.str() << " = " << (fromb ? "B" : "A") << s.str() << "\n";
    const std::vector<double> snapshot = pick(fromb);  // RHS evaluated first
    auto& dst = pick(tob);
    for (i64 t = 0; t < d.size(); ++t)
      dst[static_cast<std::size_t>(d.at(t))] = snapshot[static_cast<std::size_t>(s.at(t))];
  }

  void add_arith() {
    const bool tob = rng_() % 2;
    const Sec d = random_section();
    const Sec s1 = random_section_of_size(d.size());
    const Sec s2 = random_section_of_size(d.size());
    const i64 c = 1 + static_cast<i64>(rng_() % 9);
    const char* dn = tob ? "B" : "A";
    const std::vector<double> sa = ref_.a;
    const std::vector<double> sb = ref_.b;
    const std::vector<double>& sd = tob ? sb : sa;  // destination snapshot
    auto& dst = pick(tob);
    switch (rng_() % 3) {
      case 0:
        // dst = A(s1) * c - B(s2): the single fused copy+axpy shape.
        src_ << dn << d.str() << " = A" << s1.str() << " * " << c << " - B" << s2.str()
             << "\n";
        for (i64 t = 0; t < d.size(); ++t)
          dst[static_cast<std::size_t>(d.at(t))] =
              sa[static_cast<std::size_t>(s1.at(t))] * static_cast<double>(c) -
              sb[static_cast<std::size_t>(s2.at(t))];
        break;
      case 1:
        // dst = A(s1) + B(s2) + dst(d): the destination read through a
        // direct lane alias AFTER an intermediate sum — store fusion must
        // not park A+B in the destination span before dst(d) is read.
        src_ << dn << d.str() << " = A" << s1.str() << " + B" << s2.str() << " + " << dn
             << d.str() << "\n";
        for (i64 t = 0; t < d.size(); ++t)
          dst[static_cast<std::size_t>(d.at(t))] =
              sa[static_cast<std::size_t>(s1.at(t))] +
              sb[static_cast<std::size_t>(s2.at(t))] +
              sd[static_cast<std::size_t>(d.at(t))];
        break;
      default:
        // dst = (A(s1) - B(s2)) * (dst(d) + c): product of two multi-op
        // factors with the destination aliased inside the right factor.
        src_ << dn << d.str() << " = (A" << s1.str() << " - B" << s2.str() << ") * (" << dn
             << d.str() << " + " << c << ")\n";
        for (i64 t = 0; t < d.size(); ++t)
          dst[static_cast<std::size_t>(d.at(t))] =
              (sa[static_cast<std::size_t>(s1.at(t))] -
               sb[static_cast<std::size_t>(s2.at(t))]) *
              (sd[static_cast<std::size_t>(d.at(t))] + static_cast<double>(c));
        break;
    }
  }

  void add_forall() {
    const i64 m = 1 + static_cast<i64>(rng_() % static_cast<u64>(n_ / 2));
    const i64 off = static_cast<i64>(rng_() % static_cast<u64>(n_ - m));
    const bool tob = rng_() % 2;
    auto& dst = pick(tob);
    if (rng_() % 2) {
      // forall (i = 0:m) A(i+off) = B(i) + i
      src_ << "forall (i = 0:" << m - 1 << ") " << (tob ? "B" : "A") << "(i+" << off
           << ") = " << (tob ? "A" : "B") << "(i) + i\n";
      const std::vector<double> snapshot = pick(!tob);
      for (i64 i = 0; i < m; ++i)
        dst[static_cast<std::size_t>(i + off)] =
            snapshot[static_cast<std::size_t>(i)] + static_cast<double>(i);
    } else {
      // forall (i = 0:m) dst(i+off) = i - dst(i+off): the ramp-first shape —
      // the ramp writes the store register before the destination's direct
      // lane alias is read, so fusing the store would read back the ramp.
      const char* dn = tob ? "B" : "A";
      src_ << "forall (i = 0:" << m - 1 << ") " << dn << "(i+" << off << ") = i - " << dn
           << "(i+" << off << ")\n";
      for (i64 i = 0; i < m; ++i) {
        double& slot = dst[static_cast<std::size_t>(i + off)];
        slot = static_cast<double>(i) - slot;
      }
    }
  }

  void add_reduce() {
    // r<k> = sum|min|max(A(s1) * B(s2))  -- a reduction over an expression,
    // the transform+reduce shape both tiers fuse into a single pass.
    static const char* const ops[] = {"sum", "min", "max"};
    const unsigned op = static_cast<unsigned>(rng_() % 3);
    const Sec s1 = random_section();
    const Sec s2 = random_section_of_size(s1.size());
    const bool mul = rng_() % 2;
    std::string name = "r";  // built in two steps: gcc-12 -Wrestrict chokes
    name += std::to_string(scalar_checks_.size());
    src_ << name << " = " << ops[op] << "(A" << s1.str() << (mul ? " * B" : " - B")
         << s2.str() << ")\n";
    double acc = 0.0;
    for (i64 t = 0; t < s1.size(); ++t) {
      const double x = ref_.a[static_cast<std::size_t>(s1.at(t))];
      const double y = ref_.b[static_cast<std::size_t>(s2.at(t))];
      const double e = mul ? x * y : x - y;
      if (t == 0)
        acc = e;
      else if (op == 0)
        acc += e;
      else if (op == 1)
        acc = std::min(acc, e);
      else
        acc = std::max(acc, e);
    }
    // min/max folds are association-free, so those compare exactly even
    // though the machine reduces per rank first; sums compare approximately.
    scalar_checks_.push_back({name, acc, op != 0});
  }

  void add_where() {
    const bool tob = rng_() % 2;
    const Sec d = random_section();
    const i64 threshold = static_cast<i64>(rng_() % 100) - 50;
    const i64 v = static_cast<i64>(rng_() % 50);
    src_ << "where (" << (tob ? "B" : "A") << d.str() << " > " << threshold << ") "
         << (tob ? "B" : "A") << d.str() << " = " << v << "\n";
    auto& dst = pick(tob);
    for (i64 t = 0; t < d.size(); ++t) {
      auto& slot = dst[static_cast<std::size_t>(d.at(t))];
      if (slot > static_cast<double>(threshold)) slot = static_cast<double>(v);
    }
  }

  struct ScalarCheck {
    std::string name;
    double value;
    bool exact;
  };

  std::mt19937_64 rng_;
  i64 n_;
  RefMachine ref_;
  std::ostringstream src_;
  std::vector<ScalarCheck> scalar_checks_;
};

TEST(CompilerFuzz, RandomProgramsMatchReference) {
  for (u64 seed = 1; seed <= 40; ++seed) {
    ProgramFuzzer fuzzer(seed * 0x9E3779B97F4A7C15ULL, 120 + static_cast<i64>(seed % 7) * 33);
    for (int stmt = 0; stmt < 25; ++stmt) fuzzer.add_random_statement();
    fuzzer.run_and_check();
  }
}

}  // namespace
}  // namespace cyclick::dsl
