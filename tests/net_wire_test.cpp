// Wire-protocol tests: header encode/decode round trips, rejection of
// malformed headers, FNV-1a checksum properties, and fault injection
// against a live connect_mesh endpoint over a raw socket — corrupt or
// misrouted frames must surface as a TransportError naming the channel,
// never as delivered data or a hang.
#include <gtest/gtest.h>

#include <unistd.h>

#include <array>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "cyclick/net/socket.hpp"
#include "cyclick/net/socket_transport.hpp"
#include "cyclick/net/wire.hpp"

namespace cyclick::net {
namespace {

TEST(Wire, HeaderRoundTripsAllFields) {
  FrameHeader h;
  h.type = FrameType::kData;
  h.from = 7;
  h.to = 12345;
  h.payload_bytes = 0x1234567890ULL;
  h.checksum = 0xdeadbeefcafef00dULL;
  std::array<std::byte, kHeaderBytes> buf{};
  encode_header(h, buf.data());
  std::string err;
  const auto back = decode_header(buf.data(), err);
  ASSERT_TRUE(back.has_value()) << err;
  EXPECT_EQ(back->magic, kWireMagic);
  EXPECT_EQ(back->version, kWireVersion);
  EXPECT_EQ(back->type, FrameType::kData);
  EXPECT_EQ(back->from, 7);
  EXPECT_EQ(back->to, 12345);
  EXPECT_EQ(back->payload_bytes, 0x1234567890ULL);
  EXPECT_EQ(back->checksum, 0xdeadbeefcafef00dULL);
}

TEST(Wire, HelloRoundTrips) {
  FrameHeader h;
  h.type = FrameType::kHello;
  h.from = 3;
  h.to = 0;
  std::array<std::byte, kHeaderBytes> buf{};
  encode_header(h, buf.data());
  std::string err;
  const auto back = decode_header(buf.data(), err);
  ASSERT_TRUE(back.has_value()) << err;
  EXPECT_EQ(back->type, FrameType::kHello);
  EXPECT_EQ(back->payload_bytes, 0u);
}

TEST(Wire, MalformedHeadersRejectedWithReason) {
  FrameHeader good;
  std::array<std::byte, kHeaderBytes> buf{};
  std::string err;

  encode_header(good, buf.data());
  buf[0] = std::byte{0x00};  // clobber the magic
  EXPECT_FALSE(decode_header(buf.data(), err).has_value());
  EXPECT_NE(err.find("magic"), std::string::npos) << err;

  encode_header(good, buf.data());
  buf[4] = std::byte{0x7f};  // clobber the version
  EXPECT_FALSE(decode_header(buf.data(), err).has_value());
  EXPECT_NE(err.find("version"), std::string::npos) << err;

  encode_header(good, buf.data());
  buf[6] = std::byte{0x09};  // unknown frame type
  EXPECT_FALSE(decode_header(buf.data(), err).has_value());
  EXPECT_NE(err.find("type"), std::string::npos) << err;

  FrameHeader huge;
  huge.payload_bytes = kMaxPayloadBytes + 1;
  encode_header(huge, buf.data());
  EXPECT_FALSE(decode_header(buf.data(), err).has_value());
  EXPECT_NE(err.find("payload"), std::string::npos) << err;
}

TEST(Wire, PlanServiceFrameTypesRoundTrip) {
  // The serve protocol's frame vocabulary is part of the same header codec.
  for (const FrameType t :
       {FrameType::kPlanRequest, FrameType::kPlanResponse, FrameType::kError}) {
    FrameHeader h;
    h.type = t;
    h.payload_bytes = 64;
    std::array<std::byte, kHeaderBytes> buf{};
    encode_header(h, buf.data());
    std::string err;
    const auto back = decode_header(buf.data(), err);
    ASSERT_TRUE(back.has_value()) << err;
    EXPECT_EQ(back->type, t);
  }
}

TEST(Wire, LenientDecodeToleratesVersionAndTypeButNotFraming) {
  FrameHeader good;
  std::array<std::byte, kHeaderBytes> buf{};
  std::string err;

  // A future-version frame must still parse so a server can *answer* the
  // mismatch instead of dropping the stream.
  encode_header(good, buf.data());
  buf[4] = std::byte{0x7f};
  const auto versioned = decode_header_lenient(buf.data(), err);
  ASSERT_TRUE(versioned.has_value()) << err;
  EXPECT_EQ(versioned->version, 0x7fu);
  EXPECT_FALSE(decode_header(buf.data(), err).has_value());

  // Unknown types pass through as their raw value for the caller to judge.
  encode_header(good, buf.data());
  buf[6] = std::byte{0x42};
  const auto typed = decode_header_lenient(buf.data(), err);
  ASSERT_TRUE(typed.has_value()) << err;
  EXPECT_EQ(static_cast<u64>(typed->type), 0x42u);

  // Framing violations stay fatal even leniently: a bad magic or an absurd
  // length means the stream cannot be re-synchronized.
  encode_header(good, buf.data());
  buf[0] = std::byte{0x00};
  EXPECT_FALSE(decode_header_lenient(buf.data(), err).has_value());
  EXPECT_NE(err.find("magic"), std::string::npos) << err;

  FrameHeader huge;
  huge.payload_bytes = kMaxPayloadBytes + 1;
  encode_header(huge, buf.data());
  EXPECT_FALSE(decode_header_lenient(buf.data(), err).has_value());
  EXPECT_NE(err.find("payload"), std::string::npos) << err;
}

TEST(Wire, Fnv1a64MatchesReferenceVectors) {
  // Standard FNV-1a 64 test vectors.
  EXPECT_EQ(fnv1a64(nullptr, 0), 0xcbf29ce484222325ULL);
  const auto hash_str = [](const char* s) {
    return fnv1a64(reinterpret_cast<const std::byte*>(s), std::strlen(s));
  };
  EXPECT_EQ(hash_str("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(hash_str("foobar"), 0x85944171f73967e8ULL);
}

TEST(Wire, ChecksumIsSensitiveToEveryByte) {
  std::vector<std::byte> payload(64, std::byte{0x5a});
  const u64 base = fnv1a64(payload.data(), payload.size());
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = std::byte{0x5b};
    EXPECT_NE(fnv1a64(payload.data(), payload.size()), base) << "byte " << i;
    payload[i] = std::byte{0x5a};
  }
}

TEST(Wire, WordFoldedChecksumIsSensitiveAcrossWordAndTailBytes) {
  // 67 bytes: eight full 8-byte words plus a 3-byte tail, so both the word
  // loop and the byte tail are exercised.
  std::vector<std::byte> payload(67);
  for (std::size_t i = 0; i < payload.size(); ++i)
    payload[i] = static_cast<std::byte>(i * 37 + 11);
  EXPECT_EQ(fnv1a64w(nullptr, 0), 0xcbf29ce484222325ULL);
  // Deliberately a different function than the byte-wise walk (one multiply
  // per word), so the two must not be conflated on either end of a frame.
  EXPECT_NE(fnv1a64w(payload.data(), payload.size()),
            fnv1a64(payload.data(), payload.size()));
  const u64 base = fnv1a64w(payload.data(), payload.size());
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] ^= std::byte{0x80};
    EXPECT_NE(fnv1a64w(payload.data(), payload.size()), base) << "byte " << i;
    payload[i] ^= std::byte{0x80};
  }
  // Sub-word inputs take the byte tail exclusively, where the fold is the
  // plain byte-wise FNV-1a — the two functions agree below one word.
  for (std::size_t n = 0; n < 8; ++n)
    EXPECT_EQ(fnv1a64w(payload.data(), n), fnv1a64(payload.data(), n)) << "n " << n;
}

// --- fault injection against a live endpoint -------------------------------

/// A rank-0 connect_mesh endpoint in a world of 2, plus a raw client socket
/// posing as rank 1, so tests can write arbitrary bytes onto the wire.
struct RawPeerHarness {
  std::string dir;
  std::unique_ptr<SocketTransport> transport;
  Fd raw;

  explicit RawPeerHarness(bool send_valid_hello = true) {
    std::string tmpl = ::testing::TempDir() + "cyclick-wire-XXXXXX";
    std::vector<char> buf(tmpl.begin(), tmpl.end());
    buf.push_back('\0');
    if (::mkdtemp(buf.data()) == nullptr) throw std::runtime_error("mkdtemp failed");
    dir = buf.data();

    // connect_mesh(0, 2) blocks accepting rank 1, so it runs on a thread
    // while this thread plays rank 1 over a raw socket.
    std::thread server([this] {
      SocketTransport::Options opts;
      opts.recv_timeout_ms = 10000;  // convert any test bug into a failure, not a hang
      transport = SocketTransport::connect_mesh(0, 2, dir, opts);
    });
    try {
      raw = unix_connect_retry(dir + "/rank-0.sock", 10000, 1, 0);
      if (send_valid_hello) {
        FrameHeader hello;
        hello.type = FrameType::kHello;
        hello.from = 1;
        hello.to = 0;
        write_frame(hello);
      }
    } catch (...) {
      server.join();
      throw;
    }
    server.join();
  }

  ~RawPeerHarness() {
    raw.reset();
    transport.reset();
    std::error_code ec;
    std::filesystem::remove_all(dir, ec);
  }

  void write_frame(const FrameHeader& h, const std::vector<std::byte>& payload = {}) {
    std::array<std::byte, kHeaderBytes> hdr{};
    encode_header(h, hdr.data());
    write_fully(raw.get(), hdr.data(), hdr.size());
    if (!payload.empty()) write_fully(raw.get(), payload.data(), payload.size());
  }
};

TEST(WireFaults, ChecksumMismatchRejectsFrameAndNamesChannel) {
  RawPeerHarness h;
  std::vector<std::byte> payload(16, std::byte{0x11});
  FrameHeader frame;
  frame.from = 1;
  frame.to = 0;
  frame.payload_bytes = payload.size();
  frame.checksum = fnv1a64(payload.data(), payload.size()) ^ 1;  // corrupt
  h.write_frame(frame, payload);
  try {
    (void)h.transport->recv(0, 1);
    FAIL() << "corrupt frame must not be delivered";
  } catch (const TransportError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1->0"), std::string::npos) << what;
    EXPECT_NE(what.find("checksum"), std::string::npos) << what;
  }
}

TEST(WireFaults, MisroutedFrameRejected) {
  RawPeerHarness h;
  FrameHeader frame;
  frame.from = 1;
  frame.to = 7;  // not this endpoint
  frame.checksum = fnv1a64(nullptr, 0);
  h.write_frame(frame);
  try {
    (void)h.transport->recv(0, 1);
    FAIL() << "misrouted frame must not be delivered";
  } catch (const TransportError& e) {
    EXPECT_NE(std::string(e.what()).find("misrouted"), std::string::npos) << e.what();
  }
}

TEST(WireFaults, VersionMismatchedPeerRejectedWithNamedError) {
  // A peer that advertises an unsupported wire version must surface as a
  // named TransportError on the receiving endpoint, never as silent garbage
  // or a hang.
  RawPeerHarness h;
  FrameHeader frame;
  frame.from = 1;
  frame.to = 0;
  frame.checksum = fnv1a64(nullptr, 0);
  std::array<std::byte, kHeaderBytes> hdr{};
  encode_header(frame, hdr.data());
  hdr[4] = std::byte{0x7f};  // advertise version 127
  write_fully(h.raw.get(), hdr.data(), hdr.size());
  try {
    (void)h.transport->recv(0, 1);
    FAIL() << "version-mismatched frame must not be delivered";
  } catch (const TransportError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("version"), std::string::npos) << what;
    EXPECT_NE(what.find("127"), std::string::npos) << what;
  }
}

TEST(WireFaults, TruncatedPayloadSurfacesAsError) {
  RawPeerHarness h;
  std::vector<std::byte> payload(8, std::byte{0x22});
  FrameHeader frame;
  frame.from = 1;
  frame.to = 0;
  frame.payload_bytes = 1024;  // claims more than will ever arrive
  frame.checksum = 0;
  h.write_frame(frame, payload);
  h.raw.reset();  // close mid-payload
  EXPECT_THROW((void)h.transport->recv(0, 1), TransportError);
}

TEST(WireFaults, CleanCloseReportsPeerExit) {
  RawPeerHarness h;
  h.raw.reset();  // EOF on a frame boundary: "rank exited"
  try {
    (void)h.transport->recv(0, 1);
    FAIL() << "closed channel must not satisfy recv";
  } catch (const TransportError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1->0"), std::string::npos) << what;
    EXPECT_NE(what.find("exited"), std::string::npos) << what;
  }
}

TEST(WireFaults, DataBeforeCloseIsStillDelivered) {
  // Frames sent before the peer dies must drain before the close error.
  RawPeerHarness h;
  std::vector<std::byte> payload{std::byte{0xab}, std::byte{0xcd}};
  FrameHeader frame;
  frame.from = 1;
  frame.to = 0;
  frame.payload_bytes = payload.size();
  frame.checksum = fnv1a64(payload.data(), payload.size());
  h.write_frame(frame, payload);
  h.raw.reset();
  EXPECT_EQ(h.transport->recv(0, 1), payload);
  EXPECT_THROW((void)h.transport->recv(0, 1), TransportError);
}

}  // namespace
}  // namespace cyclick::net
