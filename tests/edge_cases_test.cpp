// Cross-cutting edge cases and contract coverage that don't belong to a
// single module's suite.
#include <gtest/gtest.h>

#include <numeric>

#include "cyclick/baselines/oracle.hpp"
#include "cyclick/codegen/nodecode.hpp"
#include "cyclick/core/lattice_addresser.hpp"
#include "cyclick/runtime/intrinsics.hpp"

namespace cyclick {
namespace {

TEST(EdgeCases, EquationsSolvedStaysLinear) {
  // WorkStats counts Diophantine solves: at most k for the start scan plus
  // at most k for the basis scan.
  for (i64 k : {4, 64, 512}) {
    const BlockCyclic dist(32, k);
    for (i64 s : {i64{7}, i64{99}, 32 * k - 1}) {
      WorkStats stats;
      compute_access_pattern(dist, 0, s, 31, &stats);
      EXPECT_LE(stats.equations_solved, 2 * k) << k << " " << s;
    }
  }
}

TEST(EdgeCases, FullOffsetTablesDriveNodeCodeWithSuppliedPhase) {
  // Phase-free tables carry no start_offset; a caller supplies the phase
  // (here: from a per-processor start) and the walk is identical.
  const BlockCyclic dist(4, 8);
  const i64 s = 9, l = 4, m = 1;
  OffsetTables tables = compute_full_offset_tables(dist, s);
  const AccessPattern pat = compute_access_pattern(dist, l, s, m);
  tables.start_offset = dist.block_offset(pat.start_global);

  const RegularSection sec{l, 300, s};
  const auto lastg = find_last(dist, sec, m);
  ASSERT_TRUE(lastg.has_value());
  std::vector<double> buffer(static_cast<std::size_t>(dist.local_capacity(301)), 0.0);
  std::vector<i64> touched;
  run_node_code(CodeShape::kOffsetIndexed, std::span<double>(buffer), pat, tables,
                dist.local_index(*lastg), [&](double& x) {
                  touched.push_back(static_cast<i64>(&x - buffer.data()));
                });
  std::vector<i64> want;
  for (const Access& a : oracle_local_sequence(dist, sec, m)) want.push_back(a.local);
  EXPECT_EQ(touched, want);
}

TEST(EdgeCases, IntrinsicContractViolations) {
  const SpmdExecutor exec(2);
  DistributedArray<double> a(BlockCyclic(2, 2), 10), b(BlockCyclic(2, 2), 12);
  EXPECT_THROW(cshift(a, b, 1, exec), precondition_error);
  EXPECT_THROW(eoshift(a, b, 1, 0.0, exec), precondition_error);
  EXPECT_THROW((void)dot_product(a, RegularSection{0, 9, 1}, b, RegularSection{0, 10, 1},
                                 exec),
               precondition_error);
  EXPECT_THROW(sum_prefix_section(a, RegularSection{0, 9, 1}, b, RegularSection{0, 11, 1},
                                  exec),
               precondition_error);
}

TEST(EdgeCases, SingleElementSectionsEverywhere) {
  const BlockCyclic dist(4, 8);
  const SpmdExecutor exec(4);
  DistributedArray<double> arr(dist, 100);
  for (i64 g : {0, 31, 99}) {
    fill_section(arr, {g, g, 1}, static_cast<double>(g), exec);
    EXPECT_EQ(arr.get(g), static_cast<double>(g));
    const double sum =
        reduce_section(arr, {g, g, 1}, 0.0, [](double x, double y) { return x + y; }, exec);
    EXPECT_EQ(sum, static_cast<double>(g));
  }
}

TEST(EdgeCases, SectionEqualToOneBlock) {
  // A section exactly covering one processor's block: all elements local to
  // one rank, unit gaps.
  const BlockCyclic dist(4, 8);
  const AccessPattern pat = compute_access_pattern(dist, 8, 1, 1);
  ASSERT_EQ(pat.start_global, 8);
  ASSERT_EQ(pat.length, 8);
  for (i64 i = 0; i + 1 < 8; ++i) EXPECT_EQ(pat.gaps[static_cast<std::size_t>(i)], 1);
}

TEST(EdgeCases, StrideEqualsBlockSize) {
  // s == k: every k-th element; hits one offset per block.
  const BlockCyclic dist(4, 8);
  for (i64 m = 0; m < 4; ++m)
    EXPECT_EQ(compute_access_pattern(dist, 0, 8, m), oracle_access_pattern(dist, 0, 8, m))
        << m;
}

TEST(EdgeCases, StrideMultipleOfRowLengthPlusBlock) {
  // s = pk + k: advances one block per row; each processor sees every
  // p-th... verified against oracle (structure is the interesting part).
  const BlockCyclic dist(4, 8);
  for (i64 m = 0; m < 4; ++m)
    EXPECT_EQ(compute_access_pattern(dist, 3, 40, m), oracle_access_pattern(dist, 3, 40, m))
        << m;
}

TEST(EdgeCases, TransformOnAlignedArrayWithStride) {
  const SpmdExecutor exec(3);
  DistributedArray<double> arr(BlockCyclic(3, 4), 40, AffineAlignment{-2, 100});
  std::vector<double> image(40);
  std::iota(image.begin(), image.end(), 0.0);
  arr.scatter(image);
  transform_section(arr, {1, 37, 4}, [](double x) { return -x; }, exec);
  const auto out = arr.gather();
  const RegularSection sec{1, 37, 4};
  for (i64 g = 0; g < 40; ++g)
    EXPECT_EQ(out[static_cast<std::size_t>(g)],
              sec.contains(g) ? -static_cast<double>(g) : static_cast<double>(g))
        << g;
}

}  // namespace
}  // namespace cyclick
