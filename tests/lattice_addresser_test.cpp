// Directed tests for the Figure-5 algorithm: start location, special cases,
// gap-table structure, offset tables, negative strides, and find_last.
#include <gtest/gtest.h>

#include "cyclick/baselines/oracle.hpp"
#include "cyclick/core/lattice_addresser.hpp"

namespace cyclick {
namespace {

TEST(FindStart, MatchesBruteForce) {
  for (i64 p : {1, 2, 4}) {
    for (i64 k : {1, 2, 5, 8}) {
      const BlockCyclic dist(p, k);
      for (i64 s : {1, 2, 3, 7, 9, 16, 33}) {
        for (i64 l : {0, 1, 4, 13}) {
          for (i64 m = 0; m < p; ++m) {
            const auto got = find_start(dist, l, s, m);
            // Brute force within two periods.
            std::optional<i64> want;
            const i64 period = dist.row_length() / gcd_i64(s, dist.row_length());
            for (i64 j = 0; j < 2 * period && !want; ++j)
              if (dist.owner(l + j * s) == m) want = l + j * s;
            if (want) {
              ASSERT_TRUE(got.has_value()) << p << " " << k << " " << s << " " << l << " " << m;
              EXPECT_EQ(got->start_global, *want);
            } else {
              EXPECT_FALSE(got.has_value());
            }
          }
        }
      }
    }
  }
}

TEST(FindStart, LengthCountsSolvableOffsets) {
  const BlockCyclic dist(4, 8);
  // gcd(9, 32) = 1: all 8 offsets solvable on every processor.
  for (i64 m = 0; m < 4; ++m) EXPECT_EQ(find_start(dist, 0, 9, m)->length, 8);
  // gcd(16, 32) = 16 >= k = 8: at most one offset per processor window.
  for (i64 m = 0; m < 4; ++m) {
    const auto si = find_start(dist, 0, 16, m);
    if (si) {
      EXPECT_EQ(si->length, 1);
    }
  }
}

TEST(ComputeAccessPattern, EmptyWhenProcessorOwnsNothing) {
  // p=4, k=8, s=32 (pk | s): every element has offset 0 -> processor 0 only.
  const BlockCyclic dist(4, 8);
  for (i64 m = 1; m < 4; ++m) {
    const AccessPattern pat = compute_access_pattern(dist, 0, 32, m);
    EXPECT_TRUE(pat.empty()) << m;
    EXPECT_EQ(pat.start_global, -1);
  }
}

TEST(ComputeAccessPattern, SingleOffsetSpecialCase) {
  // pk | s: processor 0 sees a single gap of k*s/d = k*s/pk rows... locally
  // (s/pk) rows of k cells.
  const BlockCyclic dist(4, 8);
  const AccessPattern pat = compute_access_pattern(dist, 0, 64, 0);
  ASSERT_EQ(pat.length, 1);
  EXPECT_EQ(pat.gaps[0], 8 * (64 / 32));  // k * s/d with d = pk = 32
  EXPECT_EQ(pat, oracle_access_pattern(dist, 0, 64, 0));
}

TEST(ComputeAccessPattern, StrideOneIsContiguous) {
  const BlockCyclic dist(4, 8);
  for (i64 m = 0; m < 4; ++m) {
    const AccessPattern pat = compute_access_pattern(dist, 0, 1, m);
    ASSERT_EQ(pat.length, 8);
    for (i64 i = 0; i + 1 < 8; ++i) EXPECT_EQ(pat.gaps[static_cast<std::size_t>(i)], 1);
    EXPECT_EQ(pat.gaps.back(), 1);  // wrap to the next row's block is also 1 locally
    EXPECT_EQ(pat, oracle_access_pattern(dist, 0, 1, m));
  }
}

TEST(ComputeAccessPattern, GapsAreAlwaysPositiveForAscending) {
  for (i64 p : {2, 4}) {
    for (i64 k : {4, 8}) {
      const BlockCyclic dist(p, k);
      for (i64 s = 1; s <= 3 * p * k; ++s) {
        for (i64 m = 0; m < p; ++m) {
          const AccessPattern pat = compute_access_pattern(dist, 0, s, m);
          for (const i64 g : pat.gaps) EXPECT_GT(g, 0) << p << " " << k << " " << s << " " << m;
        }
      }
    }
  }
}

TEST(ComputeAccessPattern, CycleAdvanceInvariant) {
  // Sum of one gap cycle = (s/d)*k (one full period in local memory).
  for (i64 p : {2, 3, 4}) {
    for (i64 k : {2, 4, 8}) {
      const BlockCyclic dist(p, k);
      for (i64 s : {1, 3, 5, 7, 9, 12, 33}) {
        const i64 d = gcd_i64(s, p * k);
        for (i64 m = 0; m < p; ++m) {
          const AccessPattern pat = compute_access_pattern(dist, 0, s, m);
          if (!pat.empty()) {
            EXPECT_EQ(pat.cycle_advance(), (s / d) * k)
                << p << " " << k << " " << s << " " << m;
          }
        }
      }
    }
  }
}

TEST(ComputeAccessPattern, WorkBoundHolds) {
  for (i64 p : {2, 32}) {
    for (i64 k : {4, 16, 64}) {
      const BlockCyclic dist(p, k);
      for (i64 s : {i64{7}, i64{99}, k + 1, p * k - 1, p * k + 1}) {
        WorkStats stats;
        compute_access_pattern(dist, 0, s, p - 1, &stats);
        EXPECT_LE(stats.points_visited, 2 * k + 1) << p << " " << k << " " << s;
      }
    }
  }
}

TEST(ComputeAccessPattern, NegativeStrideReversesOracle) {
  for (i64 p : {2, 4}) {
    for (i64 k : {3, 8}) {
      const BlockCyclic dist(p, k);
      for (i64 s : {-1, -2, -7, -9, -15}) {
        for (i64 l : {200, 301}) {
          for (i64 m = 0; m < p; ++m) {
            const AccessPattern got = compute_access_pattern_signed(dist, l, s, m);
            const AccessPattern want = oracle_access_pattern(dist, l, s, m);
            EXPECT_EQ(got, want) << p << " " << k << " " << s << " l=" << l << " m=" << m;
          }
        }
      }
    }
  }
}

TEST(ComputeAccessPattern, SignedPositiveDelegates) {
  const BlockCyclic dist(4, 8);
  EXPECT_EQ(compute_access_pattern_signed(dist, 4, 9, 1),
            compute_access_pattern(dist, 4, 9, 1));
}

TEST(ComputeAccessPattern, RejectsBadArguments) {
  const BlockCyclic dist(4, 8);
  EXPECT_THROW(compute_access_pattern(dist, 0, 0, 0), precondition_error);
  EXPECT_THROW(compute_access_pattern(dist, 0, -3, 0), precondition_error);
  EXPECT_THROW(compute_access_pattern(dist, 0, 9, 4), precondition_error);
  EXPECT_THROW(compute_access_pattern_signed(dist, 0, 0, 0), precondition_error);
}

TEST(FindLast, MatchesBruteForce) {
  for (i64 p : {2, 4}) {
    for (i64 k : {3, 8}) {
      const BlockCyclic dist(p, k);
      for (i64 s : {1, 7, 9, 25}) {
        for (i64 l : {0, 4}) {
          const RegularSection sec{l, l + 37 * s - 3, s};
          for (i64 m = 0; m < p; ++m) {
            std::optional<i64> want;
            for (i64 t = 0; t < sec.size(); ++t)
              if (dist.owner(sec.element(t)) == m) want = sec.element(t);
            EXPECT_EQ(find_last(dist, sec, m), want)
                << p << " " << k << " " << s << " l=" << l << " m=" << m;
          }
        }
      }
    }
  }
}

TEST(FindLast, DescendingSections) {
  const BlockCyclic dist(4, 8);
  const RegularSection down{300, 4, -9};
  for (i64 m = 0; m < 4; ++m) {
    std::optional<i64> want;
    for (i64 t = 0; t < down.size(); ++t) {
      const i64 v = down.element(t);
      if (dist.owner(v) == m && (!want || v > *want)) want = v;
    }
    EXPECT_EQ(find_last(dist, down, m), want) << m;
  }
}

TEST(OffsetTables, PaperExampleStructure) {
  // p=4, k=8, l=4, s=9, m=1: start 13 -> block offset 5.
  const BlockCyclic dist(4, 8);
  const OffsetTables t = compute_offset_tables(dist, 4, 9, 1);
  ASSERT_FALSE(t.empty());
  EXPECT_EQ(t.start_offset, 5);
  EXPECT_EQ(t.delta.size(), 8u);
  EXPECT_EQ(t.next_offset.size(), 8u);
  // Walking the tables from the start offset reproduces the AM sequence.
  const AccessPattern pat = compute_access_pattern(dist, 4, 9, 1);
  i64 q = t.start_offset;
  for (i64 i = 0; i < pat.length; ++i) {
    EXPECT_EQ(t.delta[static_cast<std::size_t>(q)], pat.gaps[static_cast<std::size_t>(i)])
        << i;
    q = t.next_offset[static_cast<std::size_t>(q)];
    ASSERT_GE(q, 0);
  }
  EXPECT_EQ(q, t.start_offset);  // the walk is a cycle
}

TEST(OffsetTables, EmptyAndSingleCases) {
  const BlockCyclic dist(4, 8);
  EXPECT_TRUE(compute_offset_tables(dist, 0, 32, 2).empty());
  const OffsetTables single = compute_offset_tables(dist, 0, 64, 0);
  ASSERT_FALSE(single.empty());
  EXPECT_EQ(single.start_offset, 0);
  EXPECT_EQ(single.delta[0], 16);
  EXPECT_EQ(single.next_offset[0], 0);
}

}  // namespace
}  // namespace cyclick
