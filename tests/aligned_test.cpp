// Tests for the two-application aligned-access solver and PackedLayout.
#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>
#include <utility>
#include <vector>

#include "cyclick/core/aligned.hpp"

namespace cyclick {
namespace {

// Brute-force packed layout: all template cells on `proc` holding array
// elements, in increasing cell order.
std::vector<i64> brute_layout_cells(const BlockCyclic& dist, const AffineAlignment& al,
                                    i64 n, i64 proc) {
  std::vector<i64> cells;
  for (i64 i = 0; i < n; ++i)
    if (dist.owner(al.cell(i)) == proc) cells.push_back(al.cell(i));
  std::sort(cells.begin(), cells.end());
  return cells;
}

TEST(PackedLayout, RankMatchesBruteForce) {
  for (i64 p : {1, 2, 3}) {
    for (i64 k : {2, 4, 5}) {
      const BlockCyclic dist(p, k);
      for (const auto& [a, b] : std::vector<std::pair<i64, i64>>{
               {1, 0}, {2, 1}, {3, 0}, {2, 5}, {-1, 50}, {-3, 200}}) {
        const AffineAlignment al{a, b};
        const i64 n = 40;
        for (i64 m = 0; m < p; ++m) {
          const PackedLayout layout(dist, al, n, m);
          const std::vector<i64> cells = brute_layout_cells(dist, al, n, m);
          EXPECT_EQ(layout.size(), static_cast<i64>(cells.size()))
              << p << " " << k << " a=" << a << " b=" << b << " m=" << m;
          for (std::size_t r = 0; r < cells.size(); ++r)
            EXPECT_EQ(layout.rank(cells[r]), static_cast<i64>(r))
                << "cell " << cells[r] << " p=" << p << " k=" << k << " a=" << a
                << " b=" << b << " m=" << m;
        }
      }
    }
  }
}

TEST(PackedLayout, UnboundedRankAgreesInExtent) {
  const BlockCyclic dist(3, 4);
  const AffineAlignment al{2, 1};
  const PackedLayout layout(dist, al, 30, 1);
  for (i64 i = 0; i < 30; ++i) {
    const i64 cell = al.cell(i);
    if (dist.owner(cell) != 1) continue;
    EXPECT_EQ(layout.rank(cell), layout.rank_unbounded(cell)) << cell;
  }
}

// Brute-force aligned access pattern via packed addresses.
AlignedAccessPattern brute_aligned(const BlockCyclic& dist, const AffineAlignment& al, i64 n,
                                   const RegularSection& sec, i64 proc) {
  AlignedAccessPattern out;
  out.proc = proc;
  const std::vector<i64> cells = brute_layout_cells(dist, al, n, proc);
  const auto rank_of = [&](i64 cell) {
    return static_cast<i64>(std::lower_bound(cells.begin(), cells.end(), cell) -
                            cells.begin());
  };
  // Traversal order = section order; collect on-proc accesses.
  std::vector<std::pair<i64, i64>> hits;  // (array index, packed local)
  for (i64 t = 0; t < sec.size(); ++t) {
    const i64 i = sec.element(t);
    const i64 cell = al.cell(i);
    if (dist.owner(cell) == proc) hits.emplace_back(i, rank_of(cell));
  }
  if (hits.empty()) return out;
  out.start_array_index = hits.front().first;
  out.start_packed_local = hits.front().second;
  return out;
}

TEST(ComputeAlignedPattern, StartMatchesBruteForceAndGapsPredict) {
  for (i64 p : {2, 3}) {
    for (i64 k : {3, 4}) {
      const BlockCyclic dist(p, k);
      for (const auto& [a, b] : std::vector<std::pair<i64, i64>>{
               {1, 0}, {2, 1}, {3, 2}, {-2, 199}}) {
        const AffineAlignment al{a, b};
        const i64 n = 80;
        for (const auto& [sl, su, ss] : std::vector<std::tuple<i64, i64, i64>>{
                 {0, 79, 1}, {2, 77, 3}, {1, 76, 5}, {70, 3, -7}, {60, 0, -4}}) {
          const RegularSection sec{sl, su, ss};
          for (i64 m = 0; m < p; ++m) {
            const AlignedAccessPattern got = compute_aligned_pattern(dist, al, n, sec, m);
            const AlignedAccessPattern brute = brute_aligned(dist, al, n, sec, m);
            if (brute.start_array_index < 0) {
              // The brute force is bounded by the section; the solver
              // reasons about the unbounded progression. If the solver found
              // a start, it must simply lie outside the bounded section when
              // brute found nothing — tolerated only for tiny sections, which
              // these are not, so expect agreement on emptiness.
              EXPECT_TRUE(got.empty() || !sec.contains(got.start_array_index))
                  << "a=" << a << " b=" << b << " sec=" << sec.to_string() << " m=" << m;
              continue;
            }
            ASSERT_FALSE(got.empty())
                << "a=" << a << " b=" << b << " sec=" << sec.to_string() << " m=" << m;
            EXPECT_EQ(got.start_array_index, brute.start_array_index)
                << "a=" << a << " b=" << b << " sec=" << sec.to_string() << " m=" << m;
            EXPECT_EQ(got.start_packed_local, brute.start_packed_local)
                << "a=" << a << " b=" << b << " sec=" << sec.to_string() << " m=" << m;
          }
        }
      }
    }
  }
}

TEST(ComputeAlignedPattern, GapsWalkTheBruteForceSequence) {
  const BlockCyclic dist(2, 4);
  const AffineAlignment al{2, 1};
  const i64 n = 60;
  const RegularSection sec{0, 59, 3};
  for (i64 m = 0; m < 2; ++m) {
    const AlignedAccessPattern pat = compute_aligned_pattern(dist, al, n, sec, m);
    const std::vector<i64> cells = brute_layout_cells(dist, al, n, m);
    // Brute sequence of packed addresses in traversal order.
    std::vector<i64> addrs;
    for (i64 t = 0; t < sec.size(); ++t) {
      const i64 cell = al.cell(sec.element(t));
      if (dist.owner(cell) == m)
        addrs.push_back(static_cast<i64>(
            std::lower_bound(cells.begin(), cells.end(), cell) - cells.begin()));
    }
    if (addrs.empty()) {
      EXPECT_TRUE(pat.empty());
      continue;
    }
    ASSERT_FALSE(pat.empty());
    ASSERT_GT(pat.length, 0);
    EXPECT_EQ(pat.start_packed_local, addrs.front());
    for (std::size_t i = 0; i + 1 < addrs.size(); ++i) {
      const i64 expect_gap = addrs[i + 1] - addrs[i];
      EXPECT_EQ(pat.gaps[i % static_cast<std::size_t>(pat.length)], expect_gap) << i;
    }
  }
}

TEST(ComputeAlignedPattern, IdentityMatchesCorePattern) {
  const BlockCyclic dist(4, 8);
  const AffineAlignment id = AffineAlignment::identity();
  const RegularSection sec{4, 300, 9};
  for (i64 m = 0; m < 4; ++m) {
    const AlignedAccessPattern pat = compute_aligned_pattern(dist, id, 320, sec, m);
    if (pat.empty()) continue;
    // For identity alignment, packed addresses equal the distribution's
    // local indices, so gaps match the classic AM table.
    EXPECT_EQ(pat.start_packed_local, dist.local_index(pat.start_array_index));
  }
}

TEST(ComputeAlignedPattern, EmptySectionYieldsEmptyPattern) {
  const BlockCyclic dist(2, 4);
  const RegularSection empty{5, 4, 1};
  EXPECT_TRUE(
      compute_aligned_pattern(dist, AffineAlignment::identity(), 10, empty, 0).empty());
}

TEST(ComputeAlignedPattern, OutOfBoundsSectionRejected) {
  const BlockCyclic dist(2, 4);
  EXPECT_THROW(compute_aligned_pattern(dist, AffineAlignment::identity(), 10,
                                       RegularSection{0, 20, 3}, 0),
               precondition_error);
}

}  // namespace
}  // namespace cyclick
