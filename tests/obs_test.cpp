// Tests for the telemetry subsystem: registry merge correctness under
// concurrent per-rank updates, histogram quantile math, chrome-trace JSON
// schema, and the disabled-mode contract (no metric may move while the
// runtime switch is off).
//
// Telemetry state is process-global; every test starts from a clean slate
// (registry reset + trace clear) and restores the disabled default on exit.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <thread>
#include <vector>

#include "cyclick/obs/metrics.hpp"
#include "cyclick/obs/report.hpp"
#include "cyclick/obs/trace.hpp"
#include "cyclick/sim/sim_transport.hpp"

namespace cyclick::obs {
namespace {

class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!compiled_in()) GTEST_SKIP() << "telemetry compiled out";
    set_enabled(false);
    Registry::global().reset();
    TraceSink::global().clear();
  }
  void TearDown() override {
    set_enabled(false);
    Registry::global().reset();
    TraceSink::global().clear();
  }
};

TEST_F(ObsTest, CounterMergesConcurrentPerRankUpdates) {
  set_enabled(true);
  Counter& c = Registry::global().counter("obs_test.concurrent");
  const i64 ranks = 8;
  const i64 per_rank = 10'000;
  std::vector<std::thread> pool;
  for (i64 r = 0; r < ranks; ++r)
    pool.emplace_back([&c, r] {
      for (i64 i = 0; i < per_rank; ++i) CYCLICK_COUNT("obs_test.concurrent", r, 1);
      c.add(r, 0);  // exercise the direct handle too
    });
  for (auto& t : pool) t.join();

  EXPECT_EQ(c.total(), ranks * per_rank);
  const std::vector<i64> by_rank = c.per_rank(ranks);
  ASSERT_EQ(by_rank.size(), static_cast<std::size_t>(ranks));
  for (i64 r = 0; r < ranks; ++r) EXPECT_EQ(by_rank[static_cast<std::size_t>(r)], per_rank);
}

TEST_F(ObsTest, CounterTotalsExactUnderRankFolding) {
  set_enabled(true);
  Counter& c = Registry::global().counter("obs_test.folding");
  // Rank ids beyond the slot count fold modulo kRankSlots: attribution
  // lands in slot (rank mod kRankSlots), and the total stays exact.
  c.add(3, 10);
  c.add(kRankSlots + 3, 7);
  c.add(5 * kRankSlots + 3, 1);
  EXPECT_EQ(c.total(), 18);
  EXPECT_EQ(c.per_rank(4).at(3), 18);
}

TEST_F(ObsTest, RegistryReturnsStableDeduplicatedHandles) {
  Counter& a = Registry::global().counter("obs_test.same");
  Counter& b = Registry::global().counter("obs_test.same");
  EXPECT_EQ(&a, &b);
  a.add(0, 2);
  Registry::global().reset();
  EXPECT_EQ(a.total(), 0);  // reset zeroes, reference stays valid
  a.add(1, 5);
  EXPECT_EQ(b.total(), 5);
}

TEST_F(ObsTest, HistogramQuantilesLandInTheRightBuckets) {
  set_enabled(true);
  Histogram& h = Registry::global().histogram("obs_test.quantiles");
  // 90 fast samples (~10us) and 10 slow ones (~1000us): the median must
  // report from the fast bucket and p99 from the slow one. Quantiles are
  // interpolated within power-of-two nanosecond buckets, so assert against
  // the containing bucket's bounds, not exact values.
  for (int i = 0; i < 90; ++i) h.record_us(0, 10.0);
  for (int i = 0; i < 10; ++i) h.record_us(1, 1000.0);

  const Histogram::Summary s = h.summary();
  EXPECT_EQ(s.count, 100);
  EXPECT_NEAR(s.sum_us, 90 * 10.0 + 10 * 1000.0, 1e-9);  // sums are exact
  EXPECT_NEAR(s.mean_us, s.sum_us / 100.0, 1e-9);

  const auto [fast_lo, fast_hi] = Histogram::bucket_bounds(Histogram::bucket_of(10'000));
  const auto [slow_lo, slow_hi] = Histogram::bucket_bounds(Histogram::bucket_of(1'000'000));
  EXPECT_GE(s.p50_us * 1e3, fast_lo);
  EXPECT_LE(s.p50_us * 1e3, fast_hi);
  EXPECT_GE(s.p90_us * 1e3, fast_lo);  // rank 90 of 100 is still a fast sample
  EXPECT_GE(s.p99_us * 1e3, slow_lo);
  EXPECT_LE(s.p99_us * 1e3, slow_hi);
  EXPECT_LE(s.p50_us, s.p90_us);
  EXPECT_LE(s.p90_us, s.p99_us);
}

TEST_F(ObsTest, HistogramBucketMathCoversEdges) {
  EXPECT_EQ(Histogram::bucket_of(0), 0);
  EXPECT_EQ(Histogram::bucket_of(1), 1);
  EXPECT_EQ(Histogram::bucket_of(2), 2);
  EXPECT_EQ(Histogram::bucket_of(3), 2);
  EXPECT_EQ(Histogram::bucket_of(-5), 0);  // clamped, never out of range
  EXPECT_EQ(Histogram::bucket_of(INT64_MAX), kHistogramBuckets - 1);
  // Bounds are doubles; stay below 2^52 so the cast back is exact.
  for (i64 b = 1; b < 52; ++b) {
    const auto [lo, hi] = Histogram::bucket_bounds(b);
    EXPECT_EQ(Histogram::bucket_of(static_cast<i64>(lo)), b);
    EXPECT_EQ(Histogram::bucket_of(static_cast<i64>(hi)), b);
  }
}

TEST_F(ObsTest, DisabledModeLeavesEveryMetricUntouched) {
  // Materialize handles first so the assertion below observes the same
  // objects the macros would write through.
  Counter& c = Registry::global().counter("obs_test.disabled_counter");
  Histogram& h = Registry::global().histogram("obs_test.disabled_hist");
  ASSERT_FALSE(enabled());

  CYCLICK_COUNT("obs_test.disabled_counter", 0, 5);
  { CYCLICK_TIME_SCOPE("obs_test.disabled_hist", 0); }
  { CYCLICK_SPAN("obs_test.disabled_span", 0); }

  EXPECT_EQ(c.total(), 0);
  EXPECT_EQ(h.summary().count, 0);
  EXPECT_EQ(TraceSink::global().event_count(), 0);
  EXPECT_EQ(TraceSink::global().dropped_count(), 0);
}

TEST_F(ObsTest, SpansRecordConcurrentlyAndAggregate) {
  set_enabled(true);
  const i64 ranks = 6;
  std::vector<std::thread> pool;
  for (i64 r = 0; r < ranks; ++r)
    pool.emplace_back([r] {
      for (int i = 0; i < 50; ++i) CYCLICK_SPAN("obs_test.span", r);
    });
  for (auto& t : pool) t.join();
  { CYCLICK_SPAN("obs_test.other", kMainTid); }

  EXPECT_EQ(TraceSink::global().event_count(), ranks * 50 + 1);
  EXPECT_EQ(TraceSink::global().dropped_count(), 0);

  const auto totals = TraceSink::global().span_totals();
  ASSERT_EQ(totals.size(), 2u);
  const auto span = std::find_if(totals.begin(), totals.end(),
                                 [](const SpanTotal& t) { return t.name == "obs_test.span"; });
  ASSERT_NE(span, totals.end());
  EXPECT_EQ(span->count, ranks * 50);

  // Snapshot is sorted by begin timestamp.
  const auto events = TraceSink::global().snapshot();
  ASSERT_EQ(events.size(), static_cast<std::size_t>(ranks * 50 + 1));
  for (std::size_t i = 1; i < events.size(); ++i)
    EXPECT_LE(events[i - 1].ts_ns, events[i].ts_ns);
}

TEST_F(ObsTest, RingOverflowKeepsEarliestEventsAndCounts) {
  TraceSink::global().set_capacity(4);
  set_enabled(true);
  for (int i = 0; i < 10; ++i) CYCLICK_SPAN("obs_test.first_four", 2);
  { CYCLICK_SPAN("obs_test.late", 2); }

  EXPECT_EQ(TraceSink::global().event_count(), 4);
  EXPECT_EQ(TraceSink::global().dropped_count(), 7);
  for (const TraceEvent& e : TraceSink::global().snapshot())
    EXPECT_STREQ(e.name, "obs_test.first_four");  // earliest events win

  TraceSink::global().clear();
  TraceSink::global().set_capacity(1 << 15);
}

TEST_F(ObsTest, ChromeTraceExportMatchesSchema) {
  set_enabled(true);
  { CYCLICK_SPAN("obs_test.alpha", 0); }
  { CYCLICK_SPAN("obs_test.beta", 3); }
  { CYCLICK_SPAN("obs_test.driver", kMainTid); }

  std::ostringstream os;
  TraceSink::global().write_chrome_trace(os);
  const std::string json = os.str();

  // Structural sanity: brackets and braces balance and quotes pair up.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '"') % 2, 0);

  // Schema: the envelope, one thread-name metadata record per tid, and one
  // complete ("X") event per span with the fields chrome://tracing needs.
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"M\",\"name\":\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"rank 0\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"rank 3\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"driver\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"obs_test.alpha\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"obs_test.beta\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":"), std::string::npos);
  EXPECT_NE(json.find("\"pid\":0"), std::string::npos);
}

TEST_F(ObsTest, CliFlagParsing) {
  CliOptions opt;
  EXPECT_FALSE(opt.any());
  EXPECT_TRUE(parse_cli_flag("--metrics", opt));
  EXPECT_TRUE(opt.metrics);
  EXPECT_FALSE(opt.metrics_json);
  EXPECT_TRUE(parse_cli_flag("--metrics=json", opt));
  EXPECT_TRUE(opt.metrics_json);
  EXPECT_TRUE(parse_cli_flag("--trace=/tmp/out.json", opt));
  EXPECT_EQ(opt.trace_path, "/tmp/out.json");
  EXPECT_TRUE(opt.any());
  EXPECT_FALSE(parse_cli_flag("--tracey", opt));
  EXPECT_FALSE(parse_cli_flag("-t", opt));
  EXPECT_FALSE(parse_cli_flag("program.hpf", opt));
}

TEST_F(ObsTest, ReportsRenderCountersHistogramsAndSpans) {
  set_enabled(true);
  Registry::global().counter("obs_test.report_counter").add(0, 42);
  Registry::global().histogram("obs_test.report_hist").record_us(0, 25.0);
  { CYCLICK_SPAN("obs_test.report_span", 1); }

  std::ostringstream text_os;
  render_text_report(text_os);
  const std::string text = text_os.str();
  EXPECT_NE(text.find("obs_test.report_counter"), std::string::npos);
  EXPECT_NE(text.find("42"), std::string::npos);
  EXPECT_NE(text.find("obs_test.report_hist"), std::string::npos);
  EXPECT_NE(text.find("obs_test.report_span"), std::string::npos);

  std::ostringstream json_os;
  render_json_report(json_os);
  const std::string json = json_os.str();
  EXPECT_NE(json.find("\"obs_test.report_counter\": 42"), std::string::npos);
  EXPECT_NE(json.find("\"spans\""), std::string::npos);
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST_F(ObsTest, SimTransportCountersAppearInJsonReport) {
  // Traffic through the simulated mesh must surface its prediction in the
  // --metrics=json report: events processed, virtual time, the incast
  // high-water mark, and payload bytes. Three concurrent arrivals into
  // rank 0 push max_inflight to 3, and the counter's *total* equals the
  // high-water mark (deltas, not per-observation adds).
  set_enabled(true);
  sim::SimTransport tr(4);
  const std::vector<std::byte> payload(256);
  tr.send(1, 0, payload);
  tr.send(2, 0, payload);
  tr.send(3, 0, payload);
  (void)tr.recv(0, 1);
  (void)tr.recv(0, 2);
  (void)tr.recv(0, 3);

  EXPECT_EQ(Registry::global().counter("sim.max_inflight").total(), 3);
  EXPECT_EQ(Registry::global().counter("sim.virtual_ns").total(), tr.virtual_ns());
  EXPECT_EQ(Registry::global().counter("sim.bytes").total(), 3 * 256);
  EXPECT_EQ(Registry::global().counter("sim.events").total(), 6);

  std::ostringstream json_os;
  render_json_report(json_os);
  const std::string json = json_os.str();
  for (const char* name :
       {"sim.events", "sim.virtual_ns", "sim.max_inflight", "sim.bytes", "sim.messages"})
    EXPECT_NE(json.find(name), std::string::npos) << name;
}

}  // namespace
}  // namespace cyclick::obs
