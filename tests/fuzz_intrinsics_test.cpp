// Randomized differential tests for the intrinsics and virtual-cyclic
// layers: shifts, prefix scans, reductions-with-locations, and class
// enumeration against straightforward references, across random machine
// shapes.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "cyclick/baselines/gupta_virtual.hpp"
#include "cyclick/runtime/intrinsics.hpp"

namespace cyclick {
namespace {

struct Machine {
  i64 p, k, n;
};

Machine draw(std::mt19937_64& rng) {
  const i64 p = 1 + static_cast<i64>(rng() % 6);
  const i64 k = 1 + static_cast<i64>(rng() % 9);
  const i64 n = 20 + static_cast<i64>(rng() % 180);
  return {p, k, n};
}

std::vector<double> random_image(std::mt19937_64& rng, i64 n) {
  std::vector<double> v(static_cast<std::size_t>(n));
  for (auto& x : v) x = static_cast<double>(rng() % 1000) - 500.0;
  return v;
}

TEST(FuzzIntrinsics, CshiftEoshiftAgainstReference) {
  std::mt19937_64 rng(0x5117F7);
  for (int trial = 0; trial < 300; ++trial) {
    const Machine m = draw(rng);
    const SpmdExecutor exec(m.p);
    DistributedArray<double> in(BlockCyclic(m.p, m.k), m.n);
    DistributedArray<double> out(BlockCyclic(m.p, 1 + static_cast<i64>(rng() % 9)), m.n);
    const auto image = random_image(rng, m.n);
    in.scatter(image);
    const i64 shift = static_cast<i64>(rng() % 500) - 250;
    if (trial % 2 == 0) {
      cshift(in, out, shift, exec);
      const auto got = out.gather();
      for (i64 i = 0; i < m.n; ++i)
        ASSERT_EQ(got[static_cast<std::size_t>(i)],
                  image[static_cast<std::size_t>(floor_mod(i + shift, m.n))])
            << "trial " << trial << " shift " << shift << " i " << i;
    } else {
      const double boundary = static_cast<double>(rng() % 10);
      eoshift(in, out, shift, boundary, exec);
      const auto got = out.gather();
      for (i64 i = 0; i < m.n; ++i) {
        const i64 src = i + shift;
        const double want = (src >= 0 && src < m.n)
                                ? image[static_cast<std::size_t>(src)]
                                : boundary;
        ASSERT_EQ(got[static_cast<std::size_t>(i)], want)
            << "trial " << trial << " shift " << shift << " i " << i;
      }
    }
  }
}

TEST(FuzzIntrinsics, SumPrefixAgainstReference) {
  std::mt19937_64 rng(0x9CAF);
  for (int trial = 0; trial < 200; ++trial) {
    const Machine m = draw(rng);
    const SpmdExecutor exec(m.p);
    DistributedArray<double> in(BlockCyclic(m.p, m.k), m.n);
    DistributedArray<double> out(BlockCyclic(m.p, 1 + static_cast<i64>(rng() % 5)), m.n);
    const auto image = random_image(rng, m.n);
    in.scatter(image);
    const i64 st = 1 + static_cast<i64>(rng() % 5);
    const i64 lo = static_cast<i64>(rng() % 10);
    const i64 count = 1 + (m.n - 1 - lo) / st;
    const RegularSection sec{lo, lo + (count - 1) * st, st};
    sum_prefix_section(in, sec, out, sec, exec);
    double acc = 0.0;
    for (i64 t = 0; t < count; ++t) {
      acc += image[static_cast<std::size_t>(sec.element(t))];
      ASSERT_EQ(out.get(sec.element(t)), acc) << "trial " << trial << " t " << t;
    }
  }
}

TEST(FuzzIntrinsics, MaxlocMinlocAgainstReference) {
  std::mt19937_64 rng(0x10CC);
  for (int trial = 0; trial < 200; ++trial) {
    const Machine m = draw(rng);
    const SpmdExecutor exec(m.p);
    DistributedArray<double> arr(BlockCyclic(m.p, m.k), m.n);
    const auto image = random_image(rng, m.n);
    arr.scatter(image);
    const i64 st = 1 + static_cast<i64>(rng() % 4);
    const i64 count = 1 + (m.n - 1) / st;
    const RegularSection sec{0, (count - 1) * st, st};
    i64 want_max = 0, want_min = 0;
    for (i64 t = 1; t < count; ++t) {
      const double v = image[static_cast<std::size_t>(sec.element(t))];
      if (v > image[static_cast<std::size_t>(sec.element(want_max))]) want_max = t;
      if (v < image[static_cast<std::size_t>(sec.element(want_min))]) want_min = t;
    }
    ASSERT_EQ(maxloc_section(arr, sec, exec), want_max) << "trial " << trial;
    ASSERT_EQ(minloc_section(arr, sec, exec), want_min) << "trial " << trial;
  }
}

TEST(FuzzIntrinsics, VirtualCyclicSetEquality) {
  std::mt19937_64 rng(0x6A5);
  for (int trial = 0; trial < 300; ++trial) {
    const Machine m = draw(rng);
    const BlockCyclic dist(m.p, m.k);
    const i64 st = 1 + static_cast<i64>(rng() % static_cast<u64>(3 * m.p * m.k));
    const i64 lo = static_cast<i64>(rng() % 50);
    const RegularSection sec{lo, lo + st * (1 + static_cast<i64>(rng() % 60)), st};
    const i64 proc = static_cast<i64>(rng() % static_cast<u64>(m.p));
    std::vector<i64> got;
    for_each_virtual_cyclic(dist, sec, proc, [&](i64 g, i64 la) {
      ASSERT_EQ(dist.owner(g), proc);
      ASSERT_EQ(dist.local_index(g), la);
      got.push_back(g);
    });
    std::sort(got.begin(), got.end());
    std::vector<i64> want;
    for (i64 t = 0; t < sec.size(); ++t)
      if (dist.owner(sec.element(t)) == proc) want.push_back(sec.element(t));
    ASSERT_EQ(got, want) << "trial " << trial << " p=" << m.p << " k=" << m.k
                         << " sec=" << sec.to_string() << " proc=" << proc;
  }
}

}  // namespace
}  // namespace cyclick
