// End-to-end tests for the mini-HPF DSL interpreter: programs execute to
// the same global state as sequential reference semantics.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "cyclick/compiler/interp.hpp"

namespace cyclick::dsl {
namespace {

constexpr const char* kPrologue = R"(
processors P(4)
template T(320)
distribute T onto P cyclic(8)
array A(320) align with T(i)
array B(320) align with T(i)
)";

TEST(Interp, PaperAssignment) {
  Machine machine;
  machine.run_source(std::string(kPrologue) + "A(4:300:9) = 100\n");
  const auto image = machine.global_image("A");
  const RegularSection sec{4, 300, 9};
  for (i64 g = 0; g < 320; ++g)
    EXPECT_EQ(image[static_cast<std::size_t>(g)], sec.contains(g) ? 100.0 : 0.0) << g;
}

TEST(Interp, ExpressionArithmetic) {
  Machine machine;
  machine.run_source(std::string(kPrologue) + R"(
A(0:319) = 3
B(0:319) = 2 * A(0:319) + 4
B(0:9) = B(0:9) / 2 - 1
)");
  const auto image = machine.global_image("B");
  for (i64 g = 0; g < 320; ++g)
    EXPECT_EQ(image[static_cast<std::size_t>(g)], g < 10 ? 4.0 : 10.0) << g;
}

TEST(Interp, StridedCopyBetweenArrays) {
  Machine machine;
  machine.run_source(std::string(kPrologue) + R"(
A(0:319) = 7
A(0:318:2) = 1
B(0:159) = A(0:318:2) * 10
)");
  const auto image = machine.global_image("B");
  for (i64 g = 0; g < 160; ++g) EXPECT_EQ(image[static_cast<std::size_t>(g)], 10.0) << g;
  for (i64 g = 160; g < 320; ++g) EXPECT_EQ(image[static_cast<std::size_t>(g)], 0.0) << g;
}

TEST(Interp, ReversalWithNegativeStride) {
  Machine machine;
  machine.run_source(std::string(kPrologue) + R"(
A(0:319) = 1
A(0:9) = 5
B(319:310:-1) = A(0:9)
)");
  const auto image = machine.global_image("B");
  for (i64 g = 310; g < 320; ++g) EXPECT_EQ(image[static_cast<std::size_t>(g)], 5.0) << g;
}

TEST(Interp, SelfAssignmentWithShiftedSections) {
  // A(1:319) = A(0:318) — a shift; temporaries make it safe.
  Machine machine;
  machine.run_source(std::string(kPrologue) + "A(0:319) = 0\nA(0:0) = 9\n");
  for (int round = 0; round < 3; ++round)
    machine.run_source("A(1:319) = A(0:318)\n");
  const auto image = machine.global_image("A");
  // After 3 shifts the 9 has propagated: positions 0..3 are all 9 (position
  // 0 never overwritten, each shift copies old values rightward once).
  EXPECT_EQ(image[0], 9.0);
  EXPECT_EQ(image[1], 9.0);
  EXPECT_EQ(image[2], 9.0);
  EXPECT_EQ(image[3], 9.0);
  EXPECT_EQ(image[4], 0.0);
}

TEST(Interp, AlignedArraysAndDifferentDistributions) {
  Machine machine;
  machine.run_source(R"(
processors P(3)
template T(400)
template U(100)
distribute T onto P cyclic(5)
distribute U onto P block
array A(100) align with T(3*i+2)
array C(100) align with U(i)
A(0:99) = 4
C(0:99) = A(0:99) * A(0:99)
)");
  const auto image = machine.global_image("C");
  for (i64 g = 0; g < 100; ++g) EXPECT_EQ(image[static_cast<std::size_t>(g)], 16.0) << g;
}

TEST(Interp, PrintOutput) {
  Machine machine;
  machine.run_source(std::string(kPrologue) + "A(0:319) = 2\nprint A(0:8:4)\n");
  EXPECT_EQ(machine.output(), "A(0:8:4) = 2 2 2\n");
}

TEST(Interp, ThreadedModeMatchesSequential) {
  const std::string program = std::string(kPrologue) + R"(
A(0:319) = 1
B(4:300:9) = A(8:304:9) + 2
B(0:99) = B(0:99) * 3 - A(100:199)
)";
  Machine seq(SpmdExecutor::Mode::kSequential);
  seq.run_source(program);
  Machine thr(SpmdExecutor::Mode::kThreads);
  thr.run_source(program);
  EXPECT_EQ(seq.global_image("A"), thr.global_image("A"));
  EXPECT_EQ(seq.global_image("B"), thr.global_image("B"));
}

TEST(Interp, SemanticErrors) {
  Machine machine;
  EXPECT_THROW((void)machine.run_source("distribute T onto P cyclic(8)"), dsl_error);
  EXPECT_THROW((void)machine.run_source("processors P(4)\narray A(10) align with T(i)"), dsl_error);
  EXPECT_THROW((void)machine.run_source(R"(
processors P(4)
template T(10)
array A(10) align with T(i)
)"),
               dsl_error);  // template not distributed
  EXPECT_THROW((void)machine.run_source(std::string(kPrologue) + "A(0:999) = 1\n"), dsl_error);
  EXPECT_THROW((void)machine.run_source(std::string(kPrologue) + "A(0:9) = B(0:19)\n"), dsl_error);
  EXPECT_THROW((void)machine.run_source(std::string(kPrologue) + "A(0:9) = 1 / 0\n"), dsl_error);
  EXPECT_THROW((void)machine.run_source(R"(
processors P(2)
template T(10)
distribute T onto P cyclic(2)
array A(20) align with T(i)
)"),
               dsl_error);  // alignment escapes template
}

TEST(Interp, ScalarVariablesAndReductions) {
  Machine machine;
  machine.run_source(std::string(kPrologue) + R"(
A(0:319) = 2
total = sum(A(0:319))
lo = min(A(0:319))
hi = max(A(0:319))
A(0:0) = 9
hi2 = max(A(0:319))
B(0:319) = A(0:319) * total + hi2
print total
)");
  EXPECT_EQ(machine.scalar("total"), 640.0);
  EXPECT_EQ(machine.scalar("lo"), 2.0);
  EXPECT_EQ(machine.scalar("hi"), 2.0);
  EXPECT_EQ(machine.scalar("hi2"), 9.0);
  EXPECT_EQ(machine.global_image("B")[1], 2.0 * 640.0 + 9.0);
  EXPECT_EQ(machine.global_image("B")[0], 9.0 * 640.0 + 9.0);
  EXPECT_EQ(machine.output(), "total = 640\n");
}

TEST(Interp, ScalarArithmeticBetweenVariables) {
  Machine machine;
  machine.run_source(std::string(kPrologue) + R"(
x = 10
y = x * 3 - 4
z = -y / 2
A(0:319) = z
)");
  EXPECT_EQ(machine.scalar("y"), 26.0);
  EXPECT_EQ(machine.scalar("z"), -13.0);
  EXPECT_EQ(machine.global_image("A")[100], -13.0);
}

TEST(Interp, ReductionOverStridedSection) {
  Machine machine;
  machine.run_source(std::string(kPrologue) + R"(
A(0:319) = 1
A(4:300:9) = 100
hot = sum(A(4:300:9))
all = sum(A(0:319))
)");
  EXPECT_EQ(machine.scalar("hot"), 3300.0);       // 33 elements of 100
  EXPECT_EQ(machine.scalar("all"), 3300.0 + 287);  // rest are 1
}

TEST(Interp, ExplainDumpsPaperExample) {
  Machine machine;
  machine.run_source(std::string(kPrologue) + "explain A(4:300:9)\n");
  const std::string& out = machine.output();
  EXPECT_NE(out.find("explain A(4:300:9) on 4 processors [cyclic(8)]"), std::string::npos)
      << out;
  // Processor 1's pattern from Figure 6.
  EXPECT_NE(out.find("proc 1: start A(13) local 5, period 8, AM = [3, 12, 15, 12, 3, 12, 3, 12]"),
            std::string::npos)
      << out;
}

TEST(Interp, SectionInScalarContextRejected) {
  Machine machine;
  EXPECT_THROW((void)machine.run_source(std::string(kPrologue) + "x = A(0:9)\n"), dsl_error);
}

TEST(Interp, UnknownScalarRejected) {
  Machine machine;
  EXPECT_THROW((void)machine.run_source(std::string(kPrologue) + "A(0:9) = nope\n"),
               dsl_error);
  EXPECT_THROW((void)machine.run_source("print nope\n"), dsl_error);
}

TEST(Interp, RedistributePreservesDataAndChangesMapping) {
  Machine machine;
  machine.run_source(std::string(kPrologue) + R"(
A(0:319) = 1
A(4:300:9) = 100
redistribute A onto P cyclic(3)
)");
  const auto& arr = machine.array("A");
  EXPECT_EQ(arr.dist().block_size(), 3);
  const RegularSection sec{4, 300, 9};
  const auto image = machine.global_image("A");
  for (i64 g = 0; g < 320; ++g)
    EXPECT_EQ(image[static_cast<std::size_t>(g)], sec.contains(g) ? 100.0 : 1.0) << g;
  // And it still computes correctly afterwards.
  machine.run_source("x = sum(A(4:300:9))\n");
  EXPECT_EQ(machine.scalar("x"), 3300.0);
}

TEST(Interp, RedistributeBlockAndCyclic) {
  Machine machine;
  machine.run_source(std::string(kPrologue) + R"(
A(0:319) = 7
redistribute A onto P block
)");
  EXPECT_EQ(machine.array("A").dist().block_size(), 80);  // ceil(320/4)
  machine.run_source("redistribute A onto P cyclic\n");
  EXPECT_EQ(machine.array("A").dist().block_size(), 1);
  for (const double v : machine.global_image("A")) EXPECT_EQ(v, 7.0);
}

TEST(Interp, RedistributeErrors) {
  Machine machine;
  EXPECT_THROW((void)machine.run_source(std::string(kPrologue) +
                                        "redistribute Z onto P cyclic(2)\n"),
               dsl_error);
  EXPECT_THROW((void)machine.run_source(std::string(kPrologue) +
                                        "redistribute A onto Q cyclic(2)\n"),
               dsl_error);
}

TEST(Interp, CshiftIntrinsic) {
  Machine machine;
  machine.run_source(std::string(kPrologue) + R"(
A(0:319) = 0
A(0:0) = 1
B(0:319) = cshift(A, 1)
)");
  const auto image = machine.global_image("B");
  for (i64 g = 0; g < 320; ++g)
    EXPECT_EQ(image[static_cast<std::size_t>(g)], g == 319 ? 1.0 : 0.0) << g;
}

TEST(Interp, EoshiftIntrinsic) {
  Machine machine;
  machine.run_source(std::string(kPrologue) + R"(
A(0:319) = 2
B(0:319) = eoshift(A, 300, -7)
)");
  const auto image = machine.global_image("B");
  for (i64 g = 0; g < 320; ++g)
    EXPECT_EQ(image[static_cast<std::size_t>(g)], g < 20 ? 2.0 : -7.0) << g;
}

TEST(Interp, ShiftCombinesWithArithmetic) {
  // A smoothing step written with shifts: B = (cshift(A,1) + cshift(A,-1)) / 2.
  Machine machine;
  machine.run_source(std::string(kPrologue) + R"(
A(0:319) = 0
A(10:10) = 100
B(0:319) = (cshift(A, 1) + cshift(A, -1)) / 2
)");
  const auto image = machine.global_image("B");
  EXPECT_EQ(image[9], 50.0);
  EXPECT_EQ(image[11], 50.0);
  EXPECT_EQ(image[10], 0.0);
}

TEST(Interp, ShiftSizeMismatchRejected) {
  Machine machine;
  EXPECT_THROW(
      (void)machine.run_source(std::string(kPrologue) + "B(0:9) = cshift(A, 1)\n"),
      dsl_error);
  EXPECT_THROW(
      (void)machine.run_source(std::string(kPrologue) + "x = cshift(A, 1)\n"),
      dsl_error);
}

TEST(Interp, ForallIdentitySubscript) {
  Machine machine;
  machine.run_source(std::string(kPrologue) + "forall (i = 0:319) A(i) = i\n");
  const auto image = machine.global_image("A");
  for (i64 g = 0; g < 320; ++g)
    EXPECT_EQ(image[static_cast<std::size_t>(g)], static_cast<double>(g)) << g;
}

TEST(Interp, ForallAffineSubscripts) {
  // forall (i = 0:99) A(2*i+1) = B(3*i) + i  — coupled affine references.
  Machine machine;
  machine.run_source(R"(
processors P(4)
template T(400)
distribute T onto P cyclic(8)
array A(400) align with T(i)
array B(400) align with T(i)
forall (i = 0:399) B(i) = 2 * i
forall (i = 0:99) A(2*i+1) = B(3*i) + i
)");
  const auto image = machine.global_image("A");
  for (i64 i = 0; i < 100; ++i)
    EXPECT_EQ(image[static_cast<std::size_t>(2 * i + 1)],
              static_cast<double>(2 * (3 * i) + i))
        << i;
  EXPECT_EQ(image[0], 0.0);  // untouched even element
}

TEST(Interp, ForallReversedRange) {
  Machine machine;
  machine.run_source(std::string(kPrologue) + R"(
A(0:319) = 0
forall (i = 319:0:-1) A(i) = 319 - i
)");
  const auto image = machine.global_image("A");
  for (i64 g = 0; g < 320; ++g)
    EXPECT_EQ(image[static_cast<std::size_t>(g)], static_cast<double>(319 - g)) << g;
}

TEST(Interp, ForallStridedRange) {
  Machine machine;
  machine.run_source(std::string(kPrologue) + R"(
A(0:319) = -1
forall (i = 4:300:9) A(i) = i * i
)");
  const auto image = machine.global_image("A");
  const RegularSection sec{4, 300, 9};
  for (i64 g = 0; g < 320; ++g) {
    const double want = sec.contains(g) ? static_cast<double>(g * g) : -1.0;
    EXPECT_EQ(image[static_cast<std::size_t>(g)], want) << g;
  }
}

TEST(Interp, ForallErrors) {
  Machine machine;
  // Constant subscripts in the body are not supported.
  EXPECT_THROW((void)machine.run_source(std::string(kPrologue) +
                                        "forall (i = 0:9) A(i) = B(5)\n"),
               dsl_error);
  // Target must depend on the index.
  EXPECT_THROW((void)machine.run_source(std::string(kPrologue) +
                                        "forall (i = 0:9) A(3) = i\n"),
               dsl_error);
  // Out-of-bounds normalized section.
  EXPECT_THROW((void)machine.run_source(std::string(kPrologue) +
                                        "forall (i = 0:319) A(2*i) = i\n"),
               dsl_error);
}

TEST(Interp, WhereMaskedFill) {
  Machine machine;
  machine.run_source(std::string(kPrologue) + R"(
forall (i = 0:319) A(i) = i
where (A(0:319) >= 200) A(0:319) = 0
)");
  const auto image = machine.global_image("A");
  for (i64 g = 0; g < 320; ++g)
    EXPECT_EQ(image[static_cast<std::size_t>(g)], g >= 200 ? 0.0 : static_cast<double>(g))
        << g;
}

TEST(Interp, WhereWithSectionOperandsAndValue) {
  Machine machine;
  machine.run_source(std::string(kPrologue) + R"(
forall (i = 0:319) A(i) = i
B(0:319) = 1000
where (A(0:319) != B(0:319) - 1000 + A(0:319)) A(0:319) = B(0:319) * 2
)");
  // Mask is A != A -> never true; A unchanged.
  const auto image = machine.global_image("A");
  for (i64 g = 0; g < 320; ++g)
    EXPECT_EQ(image[static_cast<std::size_t>(g)], static_cast<double>(g)) << g;
}

TEST(Interp, WhereOnStridedTarget) {
  Machine machine;
  machine.run_source(std::string(kPrologue) + R"(
forall (i = 0:319) A(i) = i
where (A(4:300:9) < 150) A(4:300:9) = A(4:300:9) + 1000
)");
  const auto image = machine.global_image("A");
  const RegularSection sec{4, 300, 9};
  for (i64 g = 0; g < 320; ++g) {
    double want = static_cast<double>(g);
    if (sec.contains(g) && g < 150) want += 1000.0;
    EXPECT_EQ(image[static_cast<std::size_t>(g)], want) << g;
  }
}

TEST(Interp, WhereRelopsAll) {
  const struct {
    const char* relop;
    i64 match_count;  // of values 0..9 compared against 5
  } cases[] = {{"<", 5}, {"<=", 6}, {">", 4}, {">=", 5}, {"==", 1}, {"!=", 9}};
  for (const auto& c : cases) {
    Machine machine;
    machine.run_source(std::string(kPrologue) + "forall (i = 0:9) A(i) = i\n" +
                       "where (A(0:9) " + c.relop + " 5) A(0:9) = -1\n" +
                       "hits = sum(A(0:9))\n");
    // Sum = (sum 0..9) - (sum of matched values) + (-1 * match_count).
    const auto image = machine.global_image("A");
    i64 matched = 0;
    for (i64 g = 0; g < 10; ++g)
      if (image[static_cast<std::size_t>(g)] == -1.0) ++matched;
    EXPECT_EQ(matched, c.match_count) << c.relop;
  }
}

TEST(Interp, RepeatBlockIterates) {
  Machine machine;
  machine.run_source(std::string(kPrologue) + R"(
A(0:319) = 0
A(0:0) = 1
repeat 5
  A(1:319) = A(0:318)
end
)");
  const auto image = machine.global_image("A");
  for (i64 g = 0; g < 320; ++g)
    EXPECT_EQ(image[static_cast<std::size_t>(g)], g <= 5 ? 1.0 : 0.0) << g;
}

TEST(Interp, RepeatZeroRunsNothing) {
  Machine machine;
  machine.run_source(std::string(kPrologue) + R"(
A(0:319) = 3
repeat 0
  A(0:319) = 99
end
)");
  EXPECT_EQ(machine.global_image("A")[0], 3.0);
}

TEST(Interp, NestedRepeat) {
  Machine machine;
  machine.run_source(std::string(kPrologue) + R"(
x = 0
repeat 3
  repeat 4
    x = x + 1
  end
  x = x + 100
end
)");
  EXPECT_EQ(machine.scalar("x"), 312.0);
}

TEST(Interp, RepeatErrors) {
  Machine machine;
  EXPECT_THROW((void)machine.run_source("repeat 3\nA(0:1) = 1\n"), dsl_error);  // no end
}

TEST(Interp, LoweringTraceRecordsRuntimeOps) {
  Machine machine;
  machine.set_tier(Tier::kInterp);  // the trace lines below are interp-tier lowering
  machine.enable_trace();
  machine.run_source(std::string(kPrologue) + R"(
A(0:319) = 1
B(1:318) = (A(0:317) + A(2:319)) / 2
redistribute B onto P cyclic(5)
)");
  const std::string& tr = machine.trace_log();
  EXPECT_NE(tr.find("assign A(0:319:1)"), std::string::npos) << tr;
  EXPECT_NE(tr.find("fill scalar"), std::string::npos) << tr;
  EXPECT_NE(tr.find("copy A(0:317:1) -> temp@(1:318:1)"), std::string::npos) << tr;
  EXPECT_NE(tr.find("combine local '+'"), std::string::npos) << tr;
  EXPECT_NE(tr.find("store local from temp"), std::string::npos) << tr;
  EXPECT_NE(tr.find("redistribute B -> cyclic(5)"), std::string::npos) << tr;
  EXPECT_NE(tr.find("messages="), std::string::npos) << tr;
}

TEST(Interp, TraceOffByDefault) {
  Machine machine;
  machine.run_source(std::string(kPrologue) + "A(0:319) = 1\n");
  EXPECT_TRUE(machine.trace_log().empty());
}

TEST(Interp, ScalarFoldingWorks) {
  Machine machine;
  machine.run_source(std::string(kPrologue) + "A(0:319) = (2 + 3) * 4 - 6 / 3\n");
  EXPECT_EQ(machine.global_image("A")[0], 18.0);
}

TEST(Interp, UnknownArrayLookupThrows) {
  const Machine machine;
  EXPECT_THROW((void)machine.array("nope"), dsl_error);
}

// ---------------------------------------------------------------------------
// Execution tiers: the bytecode tier must agree with the interpreter bit for
// bit, fall back cleanly on shapes it declines, and be selectable through
// the --tier flag and the CYCLICK_TIER environment variable.

TEST(Tier, FlagParsing) {
  Tier t = Tier::kInterp;
  EXPECT_TRUE(parse_tier_flag("--tier=bytecode", t));
  EXPECT_EQ(t, Tier::kBytecode);
  EXPECT_TRUE(parse_tier_flag("--tier=interp", t));
  EXPECT_EQ(t, Tier::kInterp);
  // Unknown values are recognized as tier flags but leave the tier alone.
  t = Tier::kBytecode;
  EXPECT_TRUE(parse_tier_flag("--tier=warp", t));
  EXPECT_EQ(t, Tier::kBytecode);
  EXPECT_FALSE(parse_tier_flag("--backend=proc", t));
  EXPECT_FALSE(parse_tier_flag("--tierless", t));
}

TEST(Tier, EnvSelection) {
  // Restore any ambient CYCLICK_TIER (CI sets it for whole-suite tier legs).
  const char* prior = std::getenv("CYCLICK_TIER");
  const std::string saved = prior ? prior : "";
  ASSERT_EQ(setenv("CYCLICK_TIER", "interp", 1), 0);
  EXPECT_EQ(tier_from_env(Tier::kBytecode), Tier::kInterp);
  ASSERT_EQ(setenv("CYCLICK_TIER", "bytecode", 1), 0);
  EXPECT_EQ(tier_from_env(Tier::kInterp), Tier::kBytecode);
  ASSERT_EQ(setenv("CYCLICK_TIER", "nonsense", 1), 0);
  EXPECT_EQ(tier_from_env(Tier::kBytecode), Tier::kBytecode);
  ASSERT_EQ(unsetenv("CYCLICK_TIER"), 0);
  EXPECT_EQ(tier_from_env(Tier::kBytecode), Tier::kBytecode);
  EXPECT_STREQ(tier_name(Tier::kInterp), "interp");
  EXPECT_STREQ(tier_name(Tier::kBytecode), "bytecode");
  if (prior) {
    ASSERT_EQ(setenv("CYCLICK_TIER", saved.c_str(), 1), 0);
  }
}

TEST(Tier, ExplainListsCompiledBytecode) {
  Machine machine;
  machine.run_source(std::string(kPrologue) +
                     "explain B(0:318:2) = A(0:318:2) * 2 + 1\n");
  const std::string& out = machine.output();
  EXPECT_NE(out.find("muladd.vss"), std::string::npos) << out;  // fused a*s+c
  EXPECT_NE(out.find("lanes:"), std::string::npos) << out;
  EXPECT_NE(out.find("kernels:"), std::string::npos) << out;
  EXPECT_NE(out.find("fusion:"), std::string::npos) << out;
}

TEST(Tier, ExplainReportsInterpreterFallback) {
  // N-D targets are not compiled; the explain form says so instead of
  // printing a listing.
  Machine machine;
  machine.run_source(R"(
processors G(2, 2)
template T(8, 8)
distribute T onto G cyclic(2) cyclic(2)
array M(8, 8) align with T(i, j)
explain M(0:7, 0:7) = 5
)");
  EXPECT_NE(machine.output().find("falls back to the interpreter tier"),
            std::string::npos)
      << machine.output();
}

TEST(Tier, DivisionByZeroParityAcrossTiers) {
  const std::string program = std::string(kPrologue) + R"(
A(0:319) = 7
B(0:319) = 3
B(10:19) = B(10:19) / A(10:19)
A(12:12) = 0
B(10:19) = B(10:19) / A(10:19)
)";
  auto run_tier = [&](Tier tier, std::string& what) {
    Machine machine;
    machine.set_tier(tier);
    try {
      machine.run_source(program);
      ADD_FAILURE() << "expected division by zero under " << tier_name(tier);
    } catch (const dsl_error& e) {
      what = e.what();
    }
    return machine.global_image("B");
  };
  std::string interp_what, bytecode_what;
  const auto interp_b = run_tier(Tier::kInterp, interp_what);
  const auto bytecode_b = run_tier(Tier::kBytecode, bytecode_what);
  EXPECT_EQ(interp_what, bytecode_what);
  EXPECT_NE(interp_what.find("division by zero"), std::string::npos) << interp_what;
  // The failed statement must not have mutated the destination in either
  // tier (all-or-nothing store discipline), so the images still agree.
  EXPECT_EQ(interp_b, bytecode_b);
  EXPECT_EQ(bytecode_b[10], 3.0 / 7.0);  // first divide landed, second aborted
}

TEST(Tier, FallbackMatchesInterpOnAlignedTargets) {
  // Non-identity alignment makes the bytecode compiler decline the
  // statement; execution falls back to the interpreter and must produce
  // the same values a forced-interp machine does.
  const std::string program = R"(
processors P(3)
template T(400)
distribute T onto P cyclic(5)
array A(100) align with T(3*i+2)
array B(100) align with T(3*i+2)
A(0:99) = 4
B(0:99) = A(0:99) * A(0:99)
B(0:98:2) = B(0:98:2) - A(0:98:2)
)";
  Machine interp;
  interp.set_tier(Tier::kInterp);
  interp.run_source(program);
  Machine bytecode;
  bytecode.set_tier(Tier::kBytecode);
  bytecode.run_source(program);
  EXPECT_EQ(interp.global_image("A"), bytecode.global_image("A"));
  EXPECT_EQ(interp.global_image("B"), bytecode.global_image("B"));
  EXPECT_EQ(bytecode.global_image("B")[0], 12.0);
}

TEST(Tier, ReductionOverExpressionBothTiers) {
  const std::string program = std::string(kPrologue) + R"(
A(0:319) = 2
B(0:319) = 3
dot = sum(A(0:63) * B(0:63))
lo = min(A(0:63) - B(0:63))
hi = max(A(0:63) * B(0:63) + 1)
)";
  for (const Tier tier : {Tier::kInterp, Tier::kBytecode}) {
    Machine machine;
    machine.set_tier(tier);
    machine.run_source(program);
    EXPECT_EQ(machine.scalar("dot"), 384.0) << tier_name(tier);
    EXPECT_EQ(machine.scalar("lo"), -1.0) << tier_name(tier);
    EXPECT_EQ(machine.scalar("hi"), 7.0) << tier_name(tier);
  }
}

TEST(Tier, ReductionOverExpressionErrors) {
  Machine machine;
  // No section operand to anchor the element ordering.
  EXPECT_THROW((void)machine.run_source(std::string(kPrologue) + "x = sum(1 + 2)\n"),
               dsl_error);
}

TEST(Tier, RepeatReusesCachedProgram) {
  // The same statement shape inside a repeat must keep producing interp
  // results while being served from the program cache.
  const std::string program = std::string(kPrologue) + R"(
A(0:319) = 1
B(0:319) = 0
repeat 8
B(1:318) = (A(0:317) + A(2:319)) / 2
A(1:318) = B(1:318)
end
)";
  Machine interp;
  interp.set_tier(Tier::kInterp);
  interp.run_source(program);
  Machine bytecode;
  bytecode.set_tier(Tier::kBytecode);
  bytecode.run_source(program);
  EXPECT_EQ(interp.global_image("A"), bytecode.global_image("A"));
  EXPECT_EQ(interp.global_image("B"), bytecode.global_image("B"));
}

TEST(Tier, ThreadedBytecodeMatchesSequential) {
  // The bytecode dispatch loop runs per rank inside exec.run; under the
  // threaded executor those are real concurrent threads (this is the
  // tier-differential case the TSan CI leg watches).
  const std::string program = std::string(kPrologue) + R"(
A(0:319) = 1
B(0:319) = 0
repeat 6
B(1:318) = (A(0:317) + A(2:319)) / 2
A(1:318) = B(1:318) * 2 - A(1:318)
end
total = sum(A(0:319) * B(0:319))
)";
  Machine seq(SpmdExecutor::Mode::kSequential);
  seq.set_tier(Tier::kBytecode);
  seq.run_source(program);
  Machine thr(SpmdExecutor::Mode::kThreads);
  thr.set_tier(Tier::kBytecode);
  thr.run_source(program);
  EXPECT_EQ(seq.global_image("A"), thr.global_image("A"));
  EXPECT_EQ(seq.global_image("B"), thr.global_image("B"));
  EXPECT_EQ(seq.scalar("total"), thr.scalar("total"));
}

TEST(Tier, RedistributeInvalidatesStatementShape) {
  // Redistribution changes the mapping signature in the cache key, so the
  // cached program for the old mapping must not be reused.
  const std::string program = std::string(kPrologue) + R"(
A(0:319) = 1
B(0:319) = A(0:319) * 3 + 1
redistribute A onto P cyclic(3)
B(0:319) = A(0:319) * 3 + 1
)";
  Machine bytecode;
  bytecode.set_tier(Tier::kBytecode);
  bytecode.run_source(program);
  const auto image = bytecode.global_image("B");
  for (i64 g = 0; g < 320; ++g) EXPECT_EQ(image[static_cast<std::size_t>(g)], 4.0) << g;
}

}  // namespace
}  // namespace cyclick::dsl
