// Randomized differential testing for the extension layers: aligned access
// patterns, coupled-subscript nests, and the runtime copy engines.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "cyclick/core/aligned.hpp"
#include "cyclick/core/coupled.hpp"
#include "cyclick/runtime/section_ops.hpp"

namespace cyclick {
namespace {

TEST(FuzzAligned, PatternsWalkBruteForceSequences) {
  std::mt19937_64 rng(0xA11617ED);
  for (int trial = 0; trial < 400; ++trial) {
    const i64 p = 1 + static_cast<i64>(rng() % 5);
    const i64 k = 1 + static_cast<i64>(rng() % 7);
    const BlockCyclic dist(p, k);
    i64 a = 1 + static_cast<i64>(rng() % 4);
    if (rng() % 3 == 0) a = -a;
    const i64 b = static_cast<i64>(rng() % 200) + (a < 0 ? 4 * 64 : 0);
    const AffineAlignment al{a, b};
    const i64 n = 30 + static_cast<i64>(rng() % 60);
    // Random in-bounds ascending section.
    const i64 lo = static_cast<i64>(rng() % static_cast<u64>(n - 1));
    const i64 st = 1 + static_cast<i64>(rng() % 9);
    const i64 count = 1 + static_cast<i64>(rng() % static_cast<u64>((n - lo + st - 1) / st));
    const RegularSection sec{lo, lo + (count - 1) * st, st};
    const i64 m = static_cast<i64>(rng() % static_cast<u64>(p));

    // Brute force: packed addresses in traversal order.
    std::vector<i64> cells;
    for (i64 i = 0; i < n; ++i)
      if (dist.owner(al.cell(i)) == m) cells.push_back(al.cell(i));
    std::sort(cells.begin(), cells.end());
    std::vector<i64> addrs;
    std::vector<i64> t_of;
    for (i64 t = 0; t < sec.size(); ++t) {
      const i64 cell = al.cell(sec.element(t));
      if (dist.owner(cell) == m) {
        addrs.push_back(static_cast<i64>(
            std::lower_bound(cells.begin(), cells.end(), cell) - cells.begin()));
        t_of.push_back(t);
      }
    }

    const AlignedAccessPattern pat = compute_aligned_pattern(dist, al, n, sec, m);
    if (addrs.empty()) {
      EXPECT_TRUE(pat.empty() || !sec.contains(pat.start_array_index))
          << "trial " << trial;
      continue;
    }
    ASSERT_FALSE(pat.empty()) << "trial " << trial << " p=" << p << " k=" << k
                              << " a=" << a << " b=" << b << " n=" << n
                              << " sec=" << sec.to_string() << " m=" << m;
    ASSERT_EQ(pat.start_packed_local, addrs.front()) << "trial " << trial;
    ASSERT_EQ(pat.start_array_index, sec.element(t_of.front())) << "trial " << trial;
    for (std::size_t i = 0; i + 1 < addrs.size(); ++i) {
      const i64 want_gap = addrs[i + 1] - addrs[i];
      ASSERT_EQ(pat.gaps[i % static_cast<std::size_t>(pat.length)], want_gap)
          << "trial " << trial << " i=" << i << " p=" << p << " k=" << k << " a=" << a
          << " b=" << b << " n=" << n << " sec=" << sec.to_string() << " m=" << m;
    }
  }
}

TEST(FuzzCoupled, NestEnumerationMatchesBruteForce) {
  std::mt19937_64 rng(0xC0091ED);
  for (int trial = 0; trial < 400; ++trial) {
    const i64 p = 1 + static_cast<i64>(rng() % 5);
    const i64 k = 1 + static_cast<i64>(rng() % 8);
    const BlockCyclic dist(p, k);
    const i64 o_len = 1 + static_cast<i64>(rng() % 8);
    const i64 i_len = 1 + static_cast<i64>(rng() % 12);
    const LoopNest2 nest{{static_cast<i64>(rng() % 10), 0, 1 + static_cast<i64>(rng() % 3)},
                         {static_cast<i64>(rng() % 10), 0, 1 + static_cast<i64>(rng() % 3)}};
    LoopNest2 fixed{
        {nest.outer.lower, nest.outer.lower + (o_len - 1) * nest.outer.stride,
         nest.outer.stride},
        {nest.inner.lower, nest.inner.lower + (i_len - 1) * nest.inner.stride,
         nest.inner.stride}};
    i64 c2 = 1 + static_cast<i64>(rng() % 6);
    if (rng() % 4 == 0) c2 = -c2;
    const CoupledSubscript sub{static_cast<i64>(rng() % 20) - 5, c2,
                               static_cast<i64>(rng() % 50) + 100};
    const i64 m = static_cast<i64>(rng() % static_cast<u64>(p));

    std::vector<CoupledAccess> want;
    for (i64 t1 = 0; t1 < fixed.outer.size(); ++t1)
      for (i64 t2 = 0; t2 < fixed.inner.size(); ++t2) {
        const i64 i1 = fixed.outer.element(t1);
        const i64 i2 = fixed.inner.element(t2);
        const i64 g = sub.value(i1, i2);
        if (dist.owner(g) == m) want.push_back({i1, i2, g, dist.local_index(g)});
      }
    const auto got = coupled_access_list(dist, fixed, sub, m);
    ASSERT_EQ(got, want) << "trial " << trial << " p=" << p << " k=" << k
                         << " c1=" << sub.c1 << " c2=" << sub.c2 << " b=" << sub.b
                         << " m=" << m;
  }
}

TEST(FuzzCopy, RandomRedistributionsMatchScatterReference) {
  std::mt19937_64 rng(0x5CA77E6);
  for (int trial = 0; trial < 120; ++trial) {
    const i64 p = 2 + static_cast<i64>(rng() % 4);
    const SpmdExecutor exec(p);
    const i64 ks = 1 + static_cast<i64>(rng() % 8);
    const i64 kd = 1 + static_cast<i64>(rng() % 8);
    const i64 count = 5 + static_cast<i64>(rng() % 40);
    const i64 ss = 1 + static_cast<i64>(rng() % 5);
    const i64 sd = 1 + static_cast<i64>(rng() % 5);
    const i64 ls = static_cast<i64>(rng() % 20);
    const i64 ld = static_cast<i64>(rng() % 20);
    const i64 ns = ls + (count - 1) * ss + 1 + static_cast<i64>(rng() % 10);
    const i64 nd = ld + (count - 1) * sd + 1 + static_cast<i64>(rng() % 10);
    DistributedArray<double> src(BlockCyclic(p, ks), ns);
    DistributedArray<double> dst1(BlockCyclic(p, kd), nd);
    DistributedArray<double> dst2(BlockCyclic(p, kd), nd);
    std::vector<double> image(static_cast<std::size_t>(ns));
    for (auto& v : image) v = static_cast<double>(rng() % 1000);
    src.scatter(image);
    const RegularSection ssec{ls, ls + (count - 1) * ss, ss};
    const RegularSection dsec{ld, ld + (count - 1) * sd, sd};
    copy_section(src, ssec, dst1, dsec, exec);
    symmetric_copy_section(src, ssec, dst2, dsec, exec);
    // Reference semantics.
    std::vector<double> want(static_cast<std::size_t>(nd), 0.0);
    for (i64 t = 0; t < count; ++t)
      want[static_cast<std::size_t>(dsec.element(t))] =
          image[static_cast<std::size_t>(ssec.element(t))];
    ASSERT_EQ(dst1.gather(), want) << "plan copy, trial " << trial;
    ASSERT_EQ(dst2.gather(), want) << "symmetric copy, trial " << trial;
  }
}

}  // namespace
}  // namespace cyclick
