// Tests for the mini-HPF DSL parser.
#include <gtest/gtest.h>

#include "cyclick/compiler/parser.hpp"

namespace cyclick::dsl {
namespace {

TEST(Parser, DeclarationStatements) {
  const Program prog = parse(R"(
processors P(4)
template T(320)
distribute T onto P cyclic(8)
array A(320) align with T(i)
)");
  ASSERT_EQ(prog.statements.size(), 4u);
  const auto& p = std::get<ProcsDecl>(prog.statements[0]);
  EXPECT_EQ(p.name, "P");
  EXPECT_EQ(p.extents, (std::vector<i64>{4}));
  const auto& t = std::get<TemplateDecl>(prog.statements[1]);
  EXPECT_EQ(t.name, "T");
  EXPECT_EQ(t.extents, (std::vector<i64>{320}));
  const auto& d = std::get<DistributeDecl>(prog.statements[2]);
  EXPECT_EQ(d.tmpl, "T");
  EXPECT_EQ(d.procs, "P");
  EXPECT_EQ(d.clauses.at(0).kind, DistClause::Kind::kCyclicK);
  EXPECT_EQ(d.clauses.at(0).block, 8);
  const auto& a = std::get<ArrayDecl>(prog.statements[3]);
  EXPECT_EQ(a.name, "A");
  EXPECT_EQ(a.extents, (std::vector<i64>{320}));
  EXPECT_EQ(a.tmpl, "T");
  EXPECT_EQ(a.align.at(0).a, 1);
  EXPECT_EQ(a.align.at(0).b, 0);
}

TEST(Parser, DistributeVariants) {
  const Program prog = parse("distribute T onto P cyclic\ndistribute U onto P block");
  EXPECT_EQ(std::get<DistributeDecl>(prog.statements[0]).clauses.at(0).kind, DistClause::Kind::kCyclic);
  EXPECT_EQ(std::get<DistributeDecl>(prog.statements[1]).clauses.at(0).kind, DistClause::Kind::kBlock);
}

TEST(Parser, AffineAlignments) {
  struct Case {
    const char* text;
    i64 a, b;
  };
  const Case cases[] = {
      {"array A(10) align with T(i)", 1, 0},
      {"array A(10) align with T(2*i)", 2, 0},
      {"array A(10) align with T(2*i+1)", 2, 1},
      {"array A(10) align with T(i-3)", 1, -3},
      {"array A(10) align with T(-i+99)", -1, 99},
      {"array A(10) align with T(3+i)", 1, 3},
      {"array A(10) align with T(-2*i-5)", -2, -5},
  };
  for (const Case& c : cases) {
    const Program prog = parse(c.text);
    const auto& a = std::get<ArrayDecl>(prog.statements[0]);
    EXPECT_EQ(a.align.at(0).a, c.a) << c.text;
    EXPECT_EQ(a.align.at(0).b, c.b) << c.text;
  }
}

TEST(Parser, AssignmentWithPrecedence) {
  const Program prog = parse("A(0:9) = B(0:9) + 2 * C(0:9)");
  const auto& s = std::get<AssignStmt>(prog.statements[0]);
  EXPECT_EQ(s.target.array, "A");
  EXPECT_EQ(s.target.dim0().stride, 1);  // default stride
  ASSERT_EQ(s.value->kind, Expr::Kind::kBinary);
  EXPECT_EQ(s.value->op, '+');
  EXPECT_EQ(s.value->lhs->kind, Expr::Kind::kSection);
  ASSERT_EQ(s.value->rhs->kind, Expr::Kind::kBinary);
  EXPECT_EQ(s.value->rhs->op, '*');
  EXPECT_EQ(s.value->rhs->lhs->kind, Expr::Kind::kScalar);
  EXPECT_EQ(s.value->rhs->lhs->scalar, 2.0);
}

TEST(Parser, ParenthesesOverridePrecedence) {
  const Program prog = parse("A(0:9) = (1 + 2) * 3");
  const auto& s = std::get<AssignStmt>(prog.statements[0]);
  ASSERT_EQ(s.value->kind, Expr::Kind::kBinary);
  EXPECT_EQ(s.value->op, '*');
  EXPECT_EQ(s.value->lhs->op, '+');
}

TEST(Parser, UnaryMinusAndNegativeSectionBounds) {
  const Program prog = parse("A(9:0:-3) = -B(0:3)");
  const auto& s = std::get<AssignStmt>(prog.statements[0]);
  EXPECT_EQ(s.target.dim0().lower, 9);
  EXPECT_EQ(s.target.dim0().upper, 0);
  EXPECT_EQ(s.target.dim0().stride, -3);
  EXPECT_EQ(s.value->kind, Expr::Kind::kUnaryMinus);
  EXPECT_EQ(s.value->lhs->kind, Expr::Kind::kSection);
}

TEST(Parser, PrintStatement) {
  const Program prog = parse("print A(0:30:3)");
  const auto& s = std::get<PrintStmt>(prog.statements[0]);
  EXPECT_FALSE(s.is_scalar);
  EXPECT_EQ(s.section.array, "A");
  EXPECT_EQ(s.section.dim0().stride, 3);
}

TEST(Parser, PrintScalarStatement) {
  const Program prog = parse("print total");
  const auto& s = std::get<PrintStmt>(prog.statements[0]);
  EXPECT_TRUE(s.is_scalar);
  EXPECT_EQ(s.name, "total");
}

TEST(Parser, ScalarAssignmentAndReductions) {
  const Program prog = parse("x = sum(A(0:99)) + 2 * min(B(0:9:3)) - max(C(5:50:5))");
  const auto& s = std::get<ScalarAssignStmt>(prog.statements[0]);
  EXPECT_EQ(s.name, "x");
  ASSERT_EQ(s.value->kind, Expr::Kind::kBinary);
  EXPECT_EQ(s.value->op, '-');
  const Expr& plus = *s.value->lhs;
  ASSERT_EQ(plus.kind, Expr::Kind::kBinary);
  EXPECT_EQ(plus.op, '+');
  EXPECT_EQ(plus.lhs->kind, Expr::Kind::kReduce);
  EXPECT_EQ(plus.lhs->reduce_op, "sum");
  EXPECT_EQ(plus.lhs->section.array, "A");
  EXPECT_EQ(s.value->rhs->kind, Expr::Kind::kReduce);
  EXPECT_EQ(s.value->rhs->reduce_op, "max");
}

TEST(Parser, ScalarVariableInExpression) {
  const Program prog = parse("A(0:9) = B(0:9) * alpha");
  const auto& s = std::get<AssignStmt>(prog.statements[0]);
  ASSERT_EQ(s.value->kind, Expr::Kind::kBinary);
  EXPECT_EQ(s.value->rhs->kind, Expr::Kind::kScalarVar);
  EXPECT_EQ(s.value->rhs->name, "alpha");
}

TEST(Parser, ExplainStatement) {
  const Program prog = parse("explain A(4:300:9)");
  const auto& s = std::get<ExplainStmt>(prog.statements[0]);
  EXPECT_EQ(s.section.array, "A");
  EXPECT_EQ(s.section.dim0().lower, 4);
  EXPECT_EQ(s.section.dim0().stride, 9);
}

TEST(Parser, MultiDimensionalDeclarations) {
  const Program prog = parse(R"(
processors G(2, 3)
template T(24, 30)
distribute T onto G cyclic(4) block
array M(24, 30) align with T(i, 2*j+1)
)");
  EXPECT_EQ(std::get<ProcsDecl>(prog.statements[0]).extents, (std::vector<i64>{2, 3}));
  EXPECT_EQ(std::get<TemplateDecl>(prog.statements[1]).extents, (std::vector<i64>{24, 30}));
  const auto& d = std::get<DistributeDecl>(prog.statements[2]);
  ASSERT_EQ(d.clauses.size(), 2u);
  EXPECT_EQ(d.clauses[0].kind, DistClause::Kind::kCyclicK);
  EXPECT_EQ(d.clauses[0].block, 4);
  EXPECT_EQ(d.clauses[1].kind, DistClause::Kind::kBlock);
  const auto& a = std::get<ArrayDecl>(prog.statements[3]);
  EXPECT_EQ(a.extents, (std::vector<i64>{24, 30}));
  ASSERT_EQ(a.align.size(), 2u);
  EXPECT_EQ(a.align[0].a, 1);
  EXPECT_EQ(a.align[1].a, 2);
  EXPECT_EQ(a.align[1].b, 1);
}

TEST(Parser, MultiDimensionalSections) {
  const Program prog = parse("M(0:23, 3:27:6) = N(1:24, 0:24:6) + 1");
  const auto& s = std::get<AssignStmt>(prog.statements[0]);
  ASSERT_EQ(s.target.subs.size(), 2u);
  EXPECT_EQ(s.target.subs[0].lower, 0);
  EXPECT_EQ(s.target.subs[0].upper, 23);
  EXPECT_EQ(s.target.subs[0].stride, 1);
  EXPECT_EQ(s.target.subs[1].lower, 3);
  EXPECT_EQ(s.target.subs[1].stride, 6);
  EXPECT_EQ(s.value->lhs->section.subs.size(), 2u);
}

TEST(Parser, SecondDimensionAlignVariableIsJ) {
  EXPECT_THROW(parse("array M(4, 4) align with T(i, i)"), dsl_error);
  EXPECT_THROW(parse("array M(4, 4) align with T(j, j)"), dsl_error);
}

TEST(Parser, ForallNormalization) {
  const Program prog = parse("forall (i = 0:99:2) A(3*i+1) = B(2*i) + i - 5");
  const auto& s = std::get<AssignStmt>(prog.statements[0]);
  // Target section: (3*0+1 : 3*99+1 : 3*2) but evaluated over the range's
  // actual triplet (0:99:2) -> (1 : 298 : 6).
  ASSERT_EQ(s.target.subs.size(), 1u);
  EXPECT_EQ(s.target.dim0().lower, 1);
  EXPECT_EQ(s.target.dim0().upper, 3 * 99 + 1);
  EXPECT_EQ(s.target.dim0().stride, 6);
  // RHS: ((B-section) + ramp) - 5.
  ASSERT_EQ(s.value->kind, Expr::Kind::kBinary);
  EXPECT_EQ(s.value->op, '-');
  const Expr& plus = *s.value->lhs;
  ASSERT_EQ(plus.kind, Expr::Kind::kBinary);
  ASSERT_EQ(plus.lhs->kind, Expr::Kind::kSection);
  EXPECT_EQ(plus.lhs->section.dim0().lower, 0);
  EXPECT_EQ(plus.lhs->section.dim0().stride, 4);  // 2 (coeff) * 2 (range stride)
  ASSERT_EQ(plus.rhs->kind, Expr::Kind::kRamp);
  EXPECT_EQ(plus.rhs->ramp_lower, 0);
  EXPECT_EQ(plus.rhs->ramp_stride, 2);
}

TEST(Parser, ForallErrors) {
  EXPECT_THROW(parse("forall (i = 0:9) A(3) = i"), dsl_error);      // constant target
  EXPECT_THROW(parse("forall (i = 0:9:0) A(i) = 1"), dsl_error);    // zero stride
  EXPECT_THROW(parse("forall i = 0:9 A(i) = 1"), dsl_error);        // missing parens
  EXPECT_THROW(parse("forall (i = 0:9) A(j) = 1"), dsl_error);      // wrong variable
}

TEST(Parser, ErrorsCarryLineNumbers) {
  try {
    parse("processors P(4)\ndistribute T P cyclic(8)");
    FAIL() << "expected dsl_error";
  } catch (const dsl_error& e) {
    EXPECT_EQ(e.line(), 2);
  }
}

TEST(Parser, RejectsGarbageStatements) {
  EXPECT_THROW(parse("42"), dsl_error);
  EXPECT_THROW(parse("processors"), dsl_error);
  EXPECT_THROW(parse("A(0:9) ="), dsl_error);
  EXPECT_THROW(parse("array A(10) align with T(j)"), dsl_error);
  EXPECT_THROW(parse("array A(10)"), dsl_error);
  EXPECT_THROW(parse("distribute T onto P scattered"), dsl_error);
}

TEST(Parser, EmptyProgramIsValid) {
  EXPECT_TRUE(parse("").statements.empty());
  EXPECT_TRUE(parse("\n\n# only comments\n").statements.empty());
}

}  // namespace
}  // namespace cyclick::dsl
