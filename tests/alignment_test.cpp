// Tests for affine alignments (paper, Section 2).
#include <gtest/gtest.h>

#include "cyclick/hpf/alignment.hpp"

namespace cyclick {
namespace {

TEST(AffineAlignment, IdentityProperties) {
  const AffineAlignment id = AffineAlignment::identity();
  EXPECT_TRUE(id.is_identity());
  EXPECT_EQ(id.cell(42), 42);
  EXPECT_EQ(id.index_of_cell(42), 42);
}

TEST(AffineAlignment, CellAndInverse) {
  const AffineAlignment al{2, 1};
  EXPECT_EQ(al.cell(0), 1);
  EXPECT_EQ(al.cell(5), 11);
  EXPECT_EQ(al.index_of_cell(11), 5);
  EXPECT_FALSE(al.index_of_cell(10).has_value());  // even cells hold nothing
}

TEST(AffineAlignment, NegativeCoefficient) {
  const AffineAlignment al{-3, 100};
  EXPECT_EQ(al.cell(0), 100);
  EXPECT_EQ(al.cell(10), 70);
  EXPECT_EQ(al.index_of_cell(70), 10);
  EXPECT_FALSE(al.index_of_cell(71).has_value());
  EXPECT_FALSE(al.is_identity());
}

TEST(AffineAlignment, InverseRoundTripSweep) {
  for (i64 a : {-4, -2, -1, 1, 2, 3, 7}) {
    for (i64 b : {-9, 0, 5, 13}) {
      const AffineAlignment al{a, b};
      for (i64 i = -20; i <= 20; ++i) {
        const auto back = al.index_of_cell(al.cell(i));
        ASSERT_TRUE(back.has_value());
        EXPECT_EQ(*back, i) << a << " " << b << " " << i;
      }
    }
  }
}

TEST(AffineAlignment, ImageOfSection) {
  const AffineAlignment al{2, 1};
  const RegularSection s{0, 9, 3};                  // 0 3 6 9
  const RegularSection img = al.image(s);           // 1 7 13 19
  EXPECT_EQ(img.lower, 1);
  EXPECT_EQ(img.stride, 6);
  EXPECT_EQ(img.size(), 4);
}

TEST(AffineAlignment, LayoutCoversWholeArrayAscending) {
  const AffineAlignment al{2, 1};
  const RegularSection layout = al.layout(10);  // cells 1 3 5 ... 19
  EXPECT_EQ(layout.lower, 1);
  EXPECT_EQ(layout.upper, 19);
  EXPECT_EQ(layout.stride, 2);
  EXPECT_EQ(layout.size(), 10);

  const AffineAlignment neg{-2, 100};
  const RegularSection nl = neg.layout(10);  // cells 100 98 ... 82, ascending
  EXPECT_EQ(nl.lower, 82);
  EXPECT_EQ(nl.upper, 100);
  EXPECT_EQ(nl.stride, 2);
  EXPECT_EQ(nl.size(), 10);
}

TEST(AffineAlignment, ZeroCoefficientRejected) {
  EXPECT_THROW(AffineAlignment(0, 3), precondition_error);
}

}  // namespace
}  // namespace cyclick
