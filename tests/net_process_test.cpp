// Multi-process backend tests: real fork()ed rank processes joined by the
// socket mesh. The centerpiece is the differential grid — the comm-plan
// copy cases (redistributions, negative strides, alignments, degenerate
// lattices) executed genuinely distributed via execute_copy_plan_rank must
// be byte-identical to the in-process executor. Plus launcher exit-code
// aggregation and the failure paths: a rank that exits (or is killed)
// mid-protocol surfaces as a TransportError naming the channel on its
// peers and as a per-rank diagnostic in the parent, never as a hang.
#include <gtest/gtest.h>

#include <csignal>
#include <cstdlib>
#include <numeric>
#include <string>
#include <vector>

#include "cyclick/net/launcher.hpp"
#include "cyclick/net/socket_transport.hpp"
#include "cyclick/runtime/redistribute.hpp"

namespace cyclick::net {
namespace {

std::vector<double> iota_image(i64 n) {
  std::vector<double> v(static_cast<std::size_t>(n));
  std::iota(v.begin(), v.end(), 1.0);
  return v;
}

struct CopyCase {
  const char* name;
  i64 p;
  i64 src_k, dst_k;
  i64 src_n, dst_n;
  AffineAlignment src_al, dst_al;
  RegularSection ssec, dsec;
};

// The comm-plan differential grid's multi-process cut: every structural
// regime (same-dist, redistribution, negative strides, alignments,
// degenerate gcd(s, pk) >= k lattices, single rank).
std::vector<CopyCase> differential_grid() {
  const AffineAlignment id = AffineAlignment::identity();
  return {
      {"same-dist-unit", 4, 8, 8, 320, 320, id, id, {5, 319, 5}, {1, 63, 1}},
      {"redistribute-strided", 4, 3, 8, 200, 320, id, id, {0, 199, 2}, {10, 307, 3}},
      {"cyclic1-to-block", 5, 1, 7, 300, 300, id, id, {2, 290, 3}, {0, 96, 1}},
      {"negative-both-strides", 3, 5, 2, 120, 120, id, id, {110, 2, -4}, {81, 0, -3}},
      {"degenerate-gcd-ge-k", 4, 8, 5, 320, 300, id, id, {4, 319, 16}, {0, 57, 3}},
      {"aligned-both", 2, 4, 4, 40, 40, {2, 3}, {1, 7}, {1, 37, 3}, {0, 24, 2}},
      {"aligned-negative-coeff", 2, 4, 4, 50, 50, {2, 1}, {-1, 60}, {49, 0, -1}, {0, 49, 1}},
      {"single-rank", 1, 3, 5, 64, 64, id, {1, 2}, {0, 62, 2}, {1, 63, 2}},
  };
}

TEST(NetProcess, DifferentialGridMatchesInProcessByteIdentically) {
  for (const CopyCase& c : differential_grid()) {
    SCOPED_TRACE(c.name);
    // In-process reference (the tier-1-tested executor).
    const SpmdExecutor exec(c.p);
    DistributedArray<double> src(BlockCyclic(c.p, c.src_k), c.src_n, c.src_al);
    src.scatter(iota_image(c.src_n));
    DistributedArray<double> expected(BlockCyclic(c.p, c.dst_k), c.dst_n, c.dst_al);
    const CommPlan plan = build_copy_plan(src, c.ssec, expected, c.dsec, exec);
    execute_copy_plan(plan, src, expected, exec);

    // One OS process per rank: each child rebuilds the (deterministic)
    // inputs, joins the mesh, executes only its own rank's share — every
    // remote destination element filled exclusively from wire bytes — and
    // verifies its local buffer. Exit code is the verdict.
    ProcessGroup group(c.p);
    group.spawn([&](i64 rank) -> int {
      DistributedArray<double> csrc(BlockCyclic(c.p, c.src_k), c.src_n, c.src_al);
      csrc.scatter(iota_image(c.src_n));
      DistributedArray<double> cdst(BlockCyclic(c.p, c.dst_k), c.dst_n, c.dst_al);
      const CommPlan cplan = build_copy_plan(csrc, c.ssec, cdst, c.dsec, exec);
      SocketTransport::Options opts;
      opts.recv_timeout_ms = 20000;  // a wedged child fails fast, not forever
      const auto transport = SocketTransport::connect_mesh(rank, c.p, group.dir(), opts);
      execute_copy_plan_rank(cplan, csrc, cdst, rank, *transport);
      const auto got = cdst.local(rank);
      const auto want = expected.local(rank);
      if (got.size() != want.size()) return 2;
      for (std::size_t i = 0; i < got.size(); ++i)
        if (got[i] != want[i]) return 3;
      return 0;
    });
    const auto statuses = group.wait_all(60000);
    EXPECT_EQ(describe_failures(statuses), "");
  }
}

TEST(NetProcess, RedistributionParityGridMatchesInProcessByteIdentically) {
  // The issue's (k_src, k_dst) x p parity grid, proc leg: one process mesh
  // per machine size; every child executes all 36 block-size pairs over the
  // same socket mesh via execute_copy_plan_rank and compares its local
  // image byte-for-byte against the in-process executor's. (The sim leg of
  // the same grid lives in redistribute_test.cpp.)
  const i64 n = 1500;
  const std::vector<i64> ks = {1, 2, 3, 5, 7, 64};
  for (const i64 p : {2, 4, 7, 16}) {
    SCOPED_TRACE("p=" + std::to_string(p));
    const SpmdExecutor exec(p);
    ProcessGroup group(p);
    group.spawn([&](i64 rank) -> int {
      SocketTransport::Options opts;
      opts.recv_timeout_ms = 20000;
      const auto transport = SocketTransport::connect_mesh(rank, p, group.dir(), opts);
      int pair = 0;
      for (const i64 k1 : ks) {
        for (const i64 k2 : ks) {
          ++pair;
          DistributedArray<double> src(BlockCyclic(p, k1), n);
          src.scatter(iota_image(n));
          DistributedArray<double> expected(BlockCyclic(p, k2), n);
          const CommPlan plan =
              build_copy_plan(src, {0, n - 1, 1}, expected, {0, n - 1, 1}, exec);
          execute_copy_plan(plan, src, expected, exec);

          DistributedArray<double> dst(BlockCyclic(p, k2), n);
          execute_copy_plan_rank(plan, src, dst, rank, *transport);
          const auto got = dst.local(rank);
          const auto want = expected.local(rank);
          if (got.size() != want.size()) return 100 + pair;
          for (std::size_t i = 0; i < got.size(); ++i)
            if (got[i] != want[i]) return 100 + pair;
        }
      }
      return 0;
    });
    EXPECT_EQ(describe_failures(group.wait_all(120000)), "");
  }
}

TEST(NetProcess, RepeatedExecutionStaysIdentical) {
  // The plan arena and the socket channels are reused across executions;
  // three rounds must land the same bytes every time.
  const i64 p = 3;
  const RegularSection ssec{0, 199, 2};
  const RegularSection dsec{10, 307, 3};
  const SpmdExecutor exec(p);
  DistributedArray<double> src(BlockCyclic(p, 3), 200);
  src.scatter(iota_image(200));
  DistributedArray<double> expected(BlockCyclic(p, 8), 320);
  const CommPlan plan = build_copy_plan(src, ssec, expected, dsec, exec);
  execute_copy_plan(plan, src, expected, exec);

  ProcessGroup group(p);
  group.spawn([&](i64 rank) -> int {
    DistributedArray<double> csrc(BlockCyclic(p, 3), 200);
    csrc.scatter(iota_image(200));
    DistributedArray<double> cdst(BlockCyclic(p, 8), 320);
    const CommPlan cplan = build_copy_plan(csrc, ssec, cdst, dsec, exec);
    SocketTransport::Options opts;
    opts.recv_timeout_ms = 20000;
    const auto transport = SocketTransport::connect_mesh(rank, p, group.dir(), opts);
    for (int round = 0; round < 3; ++round) {
      execute_copy_plan_rank(cplan, csrc, cdst, rank, *transport);
      const auto got = cdst.local(rank);
      const auto want = expected.local(rank);
      for (std::size_t i = 0; i < got.size(); ++i)
        if (got[i] != want[i]) return 10 + round;
    }
    return 0;
  });
  EXPECT_EQ(describe_failures(group.wait_all(60000)), "");
}

TEST(NetProcess, ExitCodesAggregatePerRank) {
  ProcessGroup group(3);
  group.spawn([](i64 rank) -> int { return static_cast<int>(rank); });
  const auto statuses = group.wait_all();
  ASSERT_EQ(statuses.size(), 3u);
  EXPECT_TRUE(statuses[0].ok());
  EXPECT_FALSE(statuses[1].ok());
  EXPECT_EQ(statuses[1].exit_code, 1);
  EXPECT_EQ(statuses[2].exit_code, 2);
  const std::string report = describe_failures(statuses);
  EXPECT_NE(report.find("rank 1"), std::string::npos) << report;
  EXPECT_NE(report.find("rank 2"), std::string::npos) << report;
  EXPECT_EQ(report.find("rank 0"), std::string::npos) << report;
}

TEST(NetProcess, ExitedPeerSurfacesAsTransportErrorNamingChannel) {
  // Rank 1 joins the mesh and exits without sending; rank 0's blocking
  // recv must turn the EOF into a TransportError naming channel 1->0.
  ProcessGroup group(2);
  group.spawn([&](i64 rank) -> int {
    SocketTransport::Options opts;
    opts.recv_timeout_ms = 20000;
    const auto transport = SocketTransport::connect_mesh(rank, 2, group.dir(), opts);
    if (rank == 1) return 0;  // clean exit, nothing sent
    try {
      (void)transport->recv(0, 1);
      return 2;  // a message appeared out of nowhere
    } catch (const TransportError& e) {
      const std::string what = e.what();
      return what.find("1->0") != std::string::npos ? 0 : 3;
    }
  });
  EXPECT_EQ(describe_failures(group.wait_all(60000)), "");
}

TEST(NetProcess, KilledPeerIsReportedAndDoesNotHangTheWorld) {
  // Rank 1 dies on SIGKILL mid-protocol. Rank 0 must unblock with a
  // TransportError, and the parent must report the fatal signal.
  ProcessGroup group(2);
  group.spawn([&](i64 rank) -> int {
    SocketTransport::Options opts;
    opts.recv_timeout_ms = 20000;
    const auto transport = SocketTransport::connect_mesh(rank, 2, group.dir(), opts);
    if (rank == 1) {
      ::raise(SIGKILL);
      return 4;  // unreachable
    }
    try {
      (void)transport->recv(0, 1);
      return 2;
    } catch (const TransportError&) {
      return 0;
    }
  });
  const auto statuses = group.wait_all(60000);
  ASSERT_EQ(statuses.size(), 2u);
  EXPECT_TRUE(statuses[0].ok());
  EXPECT_EQ(statuses[1].signal, SIGKILL);
  const std::string report = describe_failures(statuses);
  EXPECT_NE(report.find("rank 1"), std::string::npos) << report;
  EXPECT_NE(report.find("signal"), std::string::npos) << report;
}

TEST(NetProcess, EnvHelpersRoundTrip) {
  ::unsetenv(kRankEnv);
  EXPECT_FALSE(rank_from_env().has_value());
  EXPECT_EQ(world_from_env(7), 7);
  ::setenv(kRankEnv, "3", 1);
  ::setenv(kWorldEnv, "8", 1);
  EXPECT_EQ(rank_from_env().value_or(-1), 3);
  EXPECT_EQ(world_from_env(7), 8);
  ::unsetenv(kRankEnv);
  ::unsetenv(kWorldEnv);
}

}  // namespace
}  // namespace cyclick::net
