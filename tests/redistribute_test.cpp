// Redistribution-layer tests: the rotation schedule's matching properties,
// phase counting, the (k_src, k_dst) x p differential parity grid between
// the in-process executor and the simulated mesh, N-D region plans
// (copy_region / spread_region) on both backends, the region plan cache,
// and the incast study — the phase-rotated schedule must beat the naive
// posting order on peak receiver congestion at p = 64.
#include <gtest/gtest.h>

#include <cstdlib>
#include <numeric>
#include <thread>
#include <utility>
#include <vector>

#include "cyclick/runtime/multidim_array.hpp"
#include "cyclick/runtime/plan_cache.hpp"
#include "cyclick/runtime/redistribute.hpp"
#include "cyclick/sim/sim_machine.hpp"
#include "cyclick/sim/sim_transport.hpp"

namespace cyclick {
namespace {

std::vector<double> iota_image(i64 n) {
  std::vector<double> v(static_cast<std::size_t>(n));
  std::iota(v.begin(), v.end(), 1.0);
  return v;
}

TEST(Redistribute, RotationIsAPerfectMatchingEveryPhase) {
  for (const i64 p : {1, 2, 3, 7, 16, 1024}) {
    for (i64 f = 0; f < std::min<i64>(p, 9); ++f) {
      std::vector<int> hit(static_cast<std::size_t>(p), 0);
      for (i64 q = 0; q < p; ++q) {
        const i64 m = redist_peer_to(q, f, p);
        ASSERT_GE(m, 0);
        ASSERT_LT(m, p);
        ++hit[static_cast<std::size_t>(m)];
        // Inverse matching: the receiver m looks back to exactly q.
        EXPECT_EQ(redist_peer_from(m, f, p), q) << "p=" << p << " f=" << f;
        if (f == 0) {
          EXPECT_EQ(m, q);  // phase 0 is the self channel
        } else {
          EXPECT_NE(m, q);  // later phases are fixed-point-free
        }
      }
      for (const int h : hit) EXPECT_EQ(h, 1) << "p=" << p << " f=" << f;
    }
  }
}

TEST(Redistribute, PhaseCountIdentityAndShiftAndFullExchange) {
  const i64 p = 6, n = 360;
  const SpmdExecutor exec(p);
  const RegularSection whole{0, n - 1, 1};

  // Identical mappings: only the self phase.
  DistributedArray<double> a(BlockCyclic(p, 5), n), b(BlockCyclic(p, 5), n);
  const RedistributionPlan same = build_redistribution_plan(a, whole, b, whole, exec);
  EXPECT_EQ(same.phases, 1);
  EXPECT_EQ(same.remote_elements(), 0);

  // A unit shift on one distribution touches self + one neighbour phase.
  const RedistributionPlan shift = build_redistribution_plan(
      a, RegularSection{0, n - 2, 1}, b, RegularSection{1, n - 1, 1}, exec);
  EXPECT_EQ(shift.phases, 2);

  // Decorrelated block sizes light up every phase.
  DistributedArray<double> c(BlockCyclic(p, 1), n);
  const RedistributionPlan full = build_redistribution_plan(a, whole, c, whole, exec);
  EXPECT_EQ(full.phases, p);
  EXPECT_EQ(full.dims, 1);
}

// The differential parity grid the issue asks for: every (k_src, k_dst)
// pair across every machine size, executed in-process and over the
// simulated mesh, must land byte-identical images.
TEST(Redistribute, ParityGridInprocVersusSimByteIdentical) {
  const i64 n = 1500;
  const std::vector<double> image = iota_image(n);
  const RegularSection whole{0, n - 1, 1};
  for (const i64 p : {2, 4, 7, 16}) {
    const SpmdExecutor exec(p);
    for (const i64 k1 : {1, 2, 3, 5, 7, 64}) {
      for (const i64 k2 : {1, 2, 3, 5, 7, 64}) {
        SCOPED_TRACE("p=" + std::to_string(p) + " k1=" + std::to_string(k1) +
                     " k2=" + std::to_string(k2));
        DistributedArray<double> src(BlockCyclic(p, k1), n);
        src.scatter(image);
        const RedistributionPlan plan = [&] {
          DistributedArray<double> dst(BlockCyclic(p, k2), n);
          return build_redistribution_plan(src, whole, dst, whole, exec);
        }();

        DistributedArray<double> inproc_dst(BlockCyclic(p, k2), n);
        execute_redistribution(plan, src, inproc_dst, exec);
        const std::vector<double> inproc_image = inproc_dst.gather();
        EXPECT_EQ(inproc_image, image);

        std::vector<double> sim_image;
        {
          sim::SimMachine machine{sim::SimParams{}};
          sim::SimMachine::Scope scope(machine);
          DistributedArray<double> sim_dst(BlockCyclic(p, k2), n);
          execute_redistribution(plan, src, sim_dst, exec);
          sim_image = sim_dst.gather();
        }
        EXPECT_EQ(sim_image, inproc_image);
      }
    }
  }
}

MultiDimMapping grid_map(i64 rows, i64 cols, i64 kr, i64 kc) {
  std::vector<DimMapping> dims;
  dims.emplace_back(rows, AffineAlignment::identity(), BlockCyclic(3, kr));
  dims.emplace_back(cols, AffineAlignment::identity(), BlockCyclic(2, kc));
  return MultiDimMapping{std::move(dims), ProcessorGrid({3, 2})};
}

TEST(Redistribute, RegionRemapParityInprocVersusSim) {
  // A genuine 2-D remap: different block sizes per dimension on both
  // sides, plus a shifted strided region.
  const i64 rows = 36, cols = 30;
  const SpmdExecutor exec(6);
  MultiDimArray<double> src(grid_map(rows, cols, 4, 3));
  std::vector<double> image(static_cast<std::size_t>(rows * cols));
  std::iota(image.begin(), image.end(), 1.0);
  src.scatter(image);

  const Region sregion{{0, rows - 3, 1}, {0, cols - 2, 2}};
  const Region dregion{{2, rows - 1, 1}, {1, cols - 1, 2}};

  MultiDimArray<double> want(grid_map(rows, cols, 2, 5));
  copy_region(src, sregion, want, dregion, exec);

  std::vector<double> sim_image;
  {
    sim::SimMachine machine{sim::SimParams{}};
    sim::SimMachine::Scope scope(machine);
    MultiDimArray<double> got(grid_map(rows, cols, 2, 5));
    copy_region(src, sregion, got, dregion, exec);
    sim_image = got.gather();
  }
  EXPECT_EQ(sim_image, want.gather());

  // And the landed values are the shifted source, not garbage.
  const auto at = [&](const std::vector<double>& img, i64 i, i64 j) {
    return img[static_cast<std::size_t>(i * cols + j)];
  };
  const std::vector<double> landed = want.gather();
  for (i64 i = 2; i <= rows - 1; ++i)
    for (i64 j = 1; j <= cols - 1; j += 2)
      EXPECT_EQ(at(landed, i, j), at(image, i - 2, j - 1)) << i << "," << j;
}

TEST(Redistribute, SpreadRegionPinsSizeOneSourceDim) {
  const i64 n = 24, t = 7;
  const SpmdExecutor exec(6);
  MultiDimArray<double> a(grid_map(n, n, 4, 3)), ta(grid_map(n, n, 4, 3));
  std::vector<double> image(static_cast<std::size_t>(n * n));
  std::iota(image.begin(), image.end(), 1.0);
  a.scatter(image);

  const Region whole{{0, n - 1, 1}, {0, n - 1, 1}};
  spread_region(a, Region{{0, n - 1, 1}, {t, t, 1}}, ta, whole, exec);
  const auto got = ta.gather();
  for (i64 i = 0; i < n; ++i)
    for (i64 j = 0; j < n; ++j)
      EXPECT_EQ(got[static_cast<std::size_t>(i * n + j)],
                image[static_cast<std::size_t>(i * n + t)])
          << i << "," << j;

  // Mismatched non-unit sizes must still be rejected under spread.
  EXPECT_THROW(spread_region(a, Region{{0, n - 3, 1}, {t, t, 1}}, ta, whole, exec),
               std::logic_error);
}

TEST(Redistribute, RegionPlanCacheReturnsSharedPlanOnRepeat) {
  const i64 n = 24;
  const SpmdExecutor exec(6);
  MultiDimArray<double> src(grid_map(n, n, 4, 3)), dst(grid_map(n, n, 2, 3));
  const Region whole{{0, n - 1, 1}, {0, n - 1, 1}};

  RegionPlanCache cache(8);
  const auto p1 = cached_region_plan(src, whole, dst, whole, exec, false, cache);
  const auto p2 = cached_region_plan(src, whole, dst, whole, exec, false, cache);
  EXPECT_EQ(p1.get(), p2.get());
  EXPECT_EQ(p1->dims, 2);

  // The spread flag is part of the key: a spread plan for the same
  // sections must not alias the copy plan.
  MultiDimArray<double> col(grid_map(n, n, 4, 3));
  const auto pc1 = cached_region_plan(col, Region{{0, n - 1, 1}, {3, 3, 1}}, dst,
                                      Region{{0, n - 1, 1}, {3, 3, 1}}, exec, false, cache);
  const auto ps1 = cached_region_plan(col, Region{{0, n - 1, 1}, {3, 3, 1}}, dst,
                                      Region{{0, n - 1, 1}, {3, 3, 1}}, exec, true, cache);
  EXPECT_NE(pc1.get(), ps1.get());
}

TEST(Redistribute, RotatedReplayBeatsNaiveIncastAtP64) {
  // Full cyclic(1) -> cyclic(64) exchange at p=64 (n = 4 full block
  // rounds): every sender talks to every receiver. Under the naive
  // posting order every sender's f-th message targets receiver f, so
  // arrivals pile up; the rotation spreads them into perfect matchings.
  // Per-link bytes are identical (the plan is), so the schedule's effect
  // shows up in peak concurrent in-network messages to one rank.
  const i64 p = 64, n = p * p * 4;
  const SpmdExecutor exec(p);
  DistributedArray<double> src(BlockCyclic(p, 1), n);
  DistributedArray<double> dst(BlockCyclic(p, p), n);
  const CommPlan plan = build_copy_plan(src, {0, n - 1, 1}, dst, {0, n - 1, 1}, exec);

  sim::SimParams params;
  sim::SimTransport naive(p, params), rotated(p, params);
  replay_plan_traffic(plan, naive, ScheduleOrder::kNaive, sizeof(double));
  replay_plan_traffic(plan, rotated, ScheduleOrder::kRotated, sizeof(double));
  const auto rn = naive.report();
  const auto rr = rotated.report();

  EXPECT_EQ(rn.messages, rr.messages);
  EXPECT_EQ(rn.bytes, rr.bytes);
  EXPECT_GT(rr.max_in_flight, 0);
  EXPECT_GE(rn.max_in_flight, 2 * rr.max_in_flight)
      << "naive=" << rn.max_in_flight << " rotated=" << rr.max_in_flight;
}

TEST(Redistribute, ExecutorsAreGenericOverArrayKind) {
  // The same execute_copy_plan entry point moves 1-D DistributedArray
  // sections and N-D MultiDimArray regions; spot-check the 1-D path with
  // int payloads (the grid above uses double).
  const i64 p = 4, n = 101;
  const SpmdExecutor exec(p);
  DistributedArray<int> src(BlockCyclic(p, 3), n), dst(BlockCyclic(p, 7), n);
  std::vector<int> image(static_cast<std::size_t>(n));
  std::iota(image.begin(), image.end(), 1);
  src.scatter(image);
  const CommPlan plan = build_copy_plan(src, {0, n - 1, 1}, dst, {0, n - 1, 1}, exec);
  execute_copy_plan(plan, src, dst, exec);
  EXPECT_EQ(dst.gather(), image);
}

// --- pipelined executors ----------------------------------------------------

/// Scoped CYCLICK_REDIST_WINDOW override (unset on destruction).
struct WindowEnv {
  explicit WindowEnv(const char* v) { ::setenv("CYCLICK_REDIST_WINDOW", v, 1); }
  ~WindowEnv() { ::unsetenv("CYCLICK_REDIST_WINDOW"); }
};

TEST(RedistributePipelined, ParityGridAcrossWindowsInprocAndSim) {
  // The dispatching executor must produce byte-identical images at every
  // window setting — sequential (0), fixed depths, and the adaptive
  // default — on both the in-process and the simulated-transport paths.
  const i64 n = 1200;
  const std::vector<double> image = iota_image(n);
  const RegularSection whole{0, n - 1, 1};
  for (const char* window : {"0", "2", "4", "8"}) {
    WindowEnv env(window);
    for (const i64 p : {2, 4, 7}) {
      const SpmdExecutor exec(p);
      for (const i64 k1 : {1, 3, 64}) {
        for (const i64 k2 : {1, 5, 64}) {
          SCOPED_TRACE("window=" + std::string(window) + " p=" + std::to_string(p) +
                       " k1=" + std::to_string(k1) + " k2=" + std::to_string(k2));
          DistributedArray<double> src(BlockCyclic(p, k1), n);
          src.scatter(image);
          DistributedArray<double> dst(BlockCyclic(p, k2), n);
          const RedistributionPlan plan =
              build_redistribution_plan(src, whole, dst, whole, exec);
          execute_redistribution(plan, src, dst, exec);
          EXPECT_EQ(dst.gather(), image);

          sim::SimMachine machine{sim::SimParams{}};
          sim::SimMachine::Scope scope(machine);
          DistributedArray<double> sim_dst(BlockCyclic(p, k2), n);
          execute_redistribution(plan, src, sim_dst, exec);
          EXPECT_EQ(sim_dst.gather(), image);
        }
      }
    }
  }
}

TEST(RedistributePipelined, FusedExecutorMatchesSequential) {
  // Strided, shifted sections across misaligned block sizes hit all four
  // channel shapes (contiguous, one-side-contiguous, dual-stride, and
  // both-sides-periodic); the fused single pass must equal the arena path.
  const SpmdExecutor exec(4);
  DistributedArray<double> a(BlockCyclic(4, 3), 400);
  a.scatter(iota_image(400));
  for (const auto& [ssec, dsec] :
       {std::pair<RegularSection, RegularSection>{{0, 399, 2}, {10, 607, 3}},
        std::pair<RegularSection, RegularSection>{{1, 397, 4}, {0, 297, 3}}}) {
    DistributedArray<double> b_seq(BlockCyclic(4, 8), 640), b_fused(BlockCyclic(4, 8), 640);
    const CommPlan plan = build_copy_plan(a, ssec, b_seq, dsec, exec);
    execute_copy_plan_sequential(plan, a, b_seq, exec);
    execute_copy_plan_fused(plan, a, b_fused, exec);
    EXPECT_EQ(b_seq.gather(), b_fused.gather());
  }
}

TEST(RedistributePipelined, AliasedCopyFallsBackToSequential) {
  // Copying between overlapping sections of the SAME array must stay
  // correct even with a large pipeline window forced: the dispatcher
  // detects the alias and takes the arena-staged path.
  WindowEnv env("8");
  const i64 n = 900;
  const SpmdExecutor exec(4);
  const RegularSection ssec{0, 898, 2};
  const RegularSection dsec{1, 899, 2};

  DistributedArray<double> ref_src(BlockCyclic(4, 5), n), ref_dst(BlockCyclic(4, 5), n);
  ref_src.scatter(iota_image(n));
  ref_dst.scatter(iota_image(n));
  const CommPlan plan = build_copy_plan(ref_src, ssec, ref_dst, dsec, exec);
  execute_copy_plan(plan, ref_src, ref_dst, exec);

  DistributedArray<double> aliased(BlockCyclic(4, 5), n);
  aliased.scatter(iota_image(n));
  execute_copy_plan(plan, aliased, aliased, exec);
  EXPECT_EQ(aliased.gather(), ref_dst.gather());
}

TEST(RedistributePipelined, RankExecutorParityAcrossWindows) {
  // The per-rank entry point over a shared transport: every rank runs in
  // its own thread, windows forced sequential and pipelined must agree.
  const i64 n = 1100;
  const i64 p = 4;
  const SpmdExecutor exec(p);
  const std::vector<double> image = iota_image(n);
  const RegularSection whole{0, n - 1, 1};

  std::vector<double> images[2];
  int idx = 0;
  for (const char* window : {"0", "4"}) {
    WindowEnv env(window);
    DistributedArray<double> src(BlockCyclic(p, 3), n);
    src.scatter(image);
    DistributedArray<double> dst(BlockCyclic(p, 64), n);
    const CommPlan plan = build_copy_plan(src, whole, dst, whole, exec);
    InProcessTransport tr(p);
    std::vector<std::thread> ranks;
    for (i64 r = 0; r < p; ++r)
      ranks.emplace_back(
          [&, r] { execute_copy_plan_rank(plan, src, dst, r, tr); });
    for (auto& t : ranks) t.join();
    EXPECT_EQ(tr.in_flight(), 0);
    images[idx++] = dst.gather();
  }
  EXPECT_EQ(images[0], image);
  EXPECT_EQ(images[0], images[1]);
}

}  // namespace
}  // namespace cyclick
