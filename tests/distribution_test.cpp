// Tests for the cyclic(k) distribution algebra.
#include <gtest/gtest.h>

#include "cyclick/hpf/distribution.hpp"

namespace cyclick {
namespace {

TEST(BlockCyclic, BasicQueries) {
  const BlockCyclic d(4, 8);
  EXPECT_EQ(d.procs(), 4);
  EXPECT_EQ(d.block_size(), 8);
  EXPECT_EQ(d.row_length(), 32);
  EXPECT_EQ(d.owner(0), 0);
  EXPECT_EQ(d.owner(7), 0);
  EXPECT_EQ(d.owner(8), 1);
  EXPECT_EQ(d.owner(31), 3);
  EXPECT_EQ(d.owner(32), 0);
}

TEST(BlockCyclic, CoordsDecomposition) {
  const BlockCyclic d(4, 8);
  const GlobalCoords c = d.coords(108);
  EXPECT_EQ(c.row, 3);
  EXPECT_EQ(c.offset, 12);
  EXPECT_EQ(c.owner, 1);
  EXPECT_EQ(c.local, 3 * 8 + 4);
  EXPECT_EQ(d.local_index(108), c.local);
}

TEST(BlockCyclic, GlobalLocalRoundTrip) {
  for (i64 p : {1, 2, 3, 5}) {
    for (i64 k : {1, 2, 4, 7}) {
      const BlockCyclic d(p, k);
      for (i64 g = 0; g < 6 * p * k; ++g) {
        const i64 m = d.owner(g);
        EXPECT_EQ(d.global_index(m, d.local_index(g)), g) << p << " " << k << " " << g;
        EXPECT_TRUE(d.is_local(g, m));
      }
    }
  }
}

TEST(BlockCyclic, NegativeGlobalsUseFloorSemantics) {
  // Negative template cells arise under alignments with negative offsets.
  const BlockCyclic d(4, 8);
  EXPECT_EQ(d.row(-1), -1);
  EXPECT_EQ(d.offset(-1), 31);
  EXPECT_EQ(d.owner(-1), 3);
  EXPECT_EQ(d.owner(-32), 0);
}

TEST(BlockCyclic, LocalSizePartitionsTemplate) {
  for (i64 p : {1, 2, 4, 5}) {
    for (i64 k : {1, 3, 8}) {
      const BlockCyclic d(p, k);
      for (i64 n : {0L, 1L, 7L, 31L, 32L, 33L, 100L, 321L}) {
        i64 total = 0;
        for (i64 m = 0; m < p; ++m) {
          const i64 sz = d.local_size(m, n);
          total += sz;
          // Cross-check against direct counting.
          i64 count = 0;
          for (i64 g = 0; g < n; ++g)
            if (d.owner(g) == m) ++count;
          EXPECT_EQ(sz, count) << p << " " << k << " n=" << n << " m=" << m;
        }
        EXPECT_EQ(total, n);
      }
    }
  }
}

TEST(BlockCyclic, LocalCapacityIsMaxLocalSize) {
  const BlockCyclic d(4, 8);
  for (i64 n : {1, 17, 32, 100, 320}) {
    i64 mx = 0;
    for (i64 m = 0; m < 4; ++m) mx = std::max(mx, d.local_size(m, n));
    EXPECT_EQ(d.local_capacity(n), mx) << n;
  }
}

TEST(BlockCyclic, LocalIndexCountsOwnedElementsBelow) {
  // local_index(g) == number of elements with the same owner and a smaller
  // global index — the packed-layout property the algorithms rely on.
  const BlockCyclic d(3, 4);
  for (i64 g = 0; g < 60; ++g) {
    const i64 m = d.owner(g);
    i64 count = 0;
    for (i64 h = 0; h < g; ++h)
      if (d.owner(h) == m) ++count;
    EXPECT_EQ(d.local_index(g), count) << g;
  }
}

TEST(BlockCyclic, CyclicFactory) {
  const BlockCyclic d = BlockCyclic::cyclic(5);
  EXPECT_EQ(d.block_size(), 1);
  for (i64 g = 0; g < 25; ++g) EXPECT_EQ(d.owner(g), g % 5);
}

TEST(BlockCyclic, BlockFactory) {
  // block over n=10, p=4 -> cyclic(3): procs own [0,3), [3,6), [6,9), [9,10).
  const BlockCyclic d = BlockCyclic::block(10, 4);
  EXPECT_EQ(d.block_size(), 3);
  EXPECT_EQ(d.owner(0), 0);
  EXPECT_EQ(d.owner(2), 0);
  EXPECT_EQ(d.owner(3), 1);
  EXPECT_EQ(d.owner(9), 3);
  EXPECT_EQ(d.local_size(3, 10), 1);
}

TEST(BlockCyclic, RejectsBadArguments) {
  EXPECT_THROW(BlockCyclic(0, 8), precondition_error);
  EXPECT_THROW(BlockCyclic(4, 0), precondition_error);
  EXPECT_THROW(BlockCyclic(INT64_MAX / 2, 4), precondition_error);
  const BlockCyclic d(4, 8);
  EXPECT_THROW((void)d.global_index(4, 0), precondition_error);
  EXPECT_THROW((void)d.global_index(0, -1), precondition_error);
  EXPECT_THROW((void)d.local_size(-1, 10), precondition_error);
  EXPECT_THROW((void)d.local_size(0, -1), precondition_error);
}

}  // namespace
}  // namespace cyclick
