// Tests for multidimensional distributed arrays and region operations.
#include <gtest/gtest.h>

#include <numeric>
#include <set>
#include <utility>

#include "cyclick/runtime/multidim_array.hpp"

namespace cyclick {
namespace {

MultiDimMapping map_2d(i64 rows, i64 cols) {
  std::vector<DimMapping> dims;
  dims.emplace_back(rows, AffineAlignment::identity(), BlockCyclic(3, 2));
  dims.emplace_back(cols, AffineAlignment::identity(), BlockCyclic(2, 3));
  return {std::move(dims), ProcessorGrid({3, 2})};
}

TEST(MultiDimArray, GatherScatterRoundTrip) {
  MultiDimArray<double> arr(map_2d(12, 10));
  std::vector<double> image(120);
  std::iota(image.begin(), image.end(), 0.0);
  arr.scatter(image);
  EXPECT_EQ(arr.gather(), image);
}

TEST(MultiDimArray, GetSetThroughOwners) {
  MultiDimArray<int> arr(map_2d(8, 9));
  for (i64 i = 0; i < 8; ++i)
    for (i64 j = 0; j < 9; ++j) arr.set({i, j}, static_cast<int>(10 * i + j));
  for (i64 i = 0; i < 8; ++i)
    for (i64 j = 0; j < 9; ++j) EXPECT_EQ(arr.get({i, j}), 10 * i + j);
}

TEST(ForEachOwnedRegion, PartitionsTheRegion) {
  MultiDimArray<int> arr(map_2d(12, 10));
  const Region region{{1, 10, 2}, {0, 9, 3}};  // 5 x 4 elements
  const SpmdExecutor exec(6);
  i64 total = 0;
  std::set<std::pair<i64, i64>> seen;
  for (i64 r = 0; r < 6; ++r) {
    total += for_each_owned_region(arr, region, r, [&](const std::vector<i64>& idx, i64) {
      const bool inserted = seen.insert({idx[0], idx[1]}).second;
      EXPECT_TRUE(inserted) << idx[0] << "," << idx[1];
      EXPECT_EQ(arr.mapping().owner_rank(idx), r);
    });
  }
  EXPECT_EQ(total, region_size(region));
  EXPECT_EQ(static_cast<i64>(seen.size()), region_size(region));
}

TEST(ForEachOwnedRegion, LocalAddressesMatchMapping) {
  MultiDimArray<int> arr(map_2d(12, 10));
  const Region region{{0, 11, 1}, {0, 9, 1}};
  for (i64 r = 0; r < 6; ++r) {
    for_each_owned_region(arr, region, r, [&](const std::vector<i64>& idx, i64 addr) {
      EXPECT_EQ(addr, arr.mapping().local_address(idx));
    });
  }
}

TEST(FillRegion, MatchesReference) {
  MultiDimArray<double> arr(map_2d(12, 10));
  std::vector<double> ref(120, 0.0);
  arr.scatter(ref);
  const Region region{{2, 11, 3}, {1, 8, 2}};
  const SpmdExecutor exec(6);
  fill_region(arr, region, 7.0, exec);
  for (i64 t0 = 0; t0 < region[0].size(); ++t0)
    for (i64 t1 = 0; t1 < region[1].size(); ++t1)
      ref[static_cast<std::size_t>(region[0].element(t0) * 10 + region[1].element(t1))] = 7.0;
  EXPECT_EQ(arr.gather(), ref);
}

TEST(TransformRegion, MatchesReference) {
  MultiDimArray<double> arr(map_2d(12, 10));
  std::vector<double> ref(120);
  std::iota(ref.begin(), ref.end(), 0.0);
  arr.scatter(ref);
  const Region region{{0, 11, 2}, {0, 9, 1}};
  const SpmdExecutor exec(6);
  transform_region(arr, region, [](double x) { return 3.0 * x; }, exec);
  for (i64 i = 0; i < 12; i += 2)
    for (i64 j = 0; j < 10; ++j) ref[static_cast<std::size_t>(i * 10 + j)] *= 3.0;
  EXPECT_EQ(arr.gather(), ref);
}

TEST(CopyRegion, ShiftWithinOneArrayShape) {
  MultiDimArray<double> a(map_2d(12, 10)), b(map_2d(12, 10));
  std::vector<double> image(120);
  std::iota(image.begin(), image.end(), 0.0);
  a.scatter(image);
  const SpmdExecutor exec(6);
  // b(0:10, 0:8) = a(1:11, 1:9)  — a diagonal shift.
  copy_region(a, Region{{1, 11, 1}, {1, 9, 1}}, b, Region{{0, 10, 1}, {0, 8, 1}}, exec);
  for (i64 i = 0; i <= 10; ++i)
    for (i64 j = 0; j <= 8; ++j)
      EXPECT_EQ(b.get({i, j}), image[static_cast<std::size_t>((i + 1) * 10 + (j + 1))])
          << i << "," << j;
}

TEST(CopyRegion, AcrossDifferentGridShapesRejected) {
  MultiDimArray<double> a(map_2d(12, 10));
  std::vector<DimMapping> dims;
  dims.emplace_back(12, AffineAlignment::identity(), BlockCyclic(2, 2));
  dims.emplace_back(10, AffineAlignment::identity(), BlockCyclic(3, 2));
  MultiDimArray<double> b(MultiDimMapping{std::move(dims), ProcessorGrid({2, 3})});
  const SpmdExecutor exec(6);
  // Same rank count, different grid: the copy is still well-defined (pull
  // model reads through global addressing) and must produce correct data.
  std::vector<double> image(120);
  std::iota(image.begin(), image.end(), 0.0);
  a.scatter(image);
  copy_region(a, Region{{0, 11, 1}, {0, 9, 1}}, b, Region{{0, 11, 1}, {0, 9, 1}}, exec);
  EXPECT_EQ(b.gather(), image);
}

TEST(CopyRegion, MismatchedExtentsRejected) {
  MultiDimArray<double> a(map_2d(12, 10)), b(map_2d(12, 10));
  const SpmdExecutor exec(6);
  EXPECT_THROW(
      copy_region(a, Region{{0, 5, 1}, {0, 9, 1}}, b, Region{{0, 4, 1}, {0, 9, 1}}, exec),
      precondition_error);
}

TEST(ReduceRegion, SumsRegion) {
  MultiDimArray<double> arr(map_2d(12, 10));
  std::vector<double> image(120);
  std::iota(image.begin(), image.end(), 0.0);
  arr.scatter(image);
  const Region region{{1, 10, 2}, {2, 8, 3}};
  const SpmdExecutor exec(6);
  const double got =
      reduce_region(arr, region, 0.0, [](double a, double b) { return a + b; }, exec);
  double want = 0.0;
  for (i64 t0 = 0; t0 < region[0].size(); ++t0)
    for (i64 t1 = 0; t1 < region[1].size(); ++t1)
      want += image[static_cast<std::size_t>(region[0].element(t0) * 10 +
                                             region[1].element(t1))];
  EXPECT_EQ(got, want);
}

TEST(MultiDimArray, ThreeDimensional) {
  std::vector<DimMapping> dims;
  dims.emplace_back(6, AffineAlignment::identity(), BlockCyclic(2, 1));
  dims.emplace_back(5, AffineAlignment::identity(), BlockCyclic(1, 5));
  dims.emplace_back(8, AffineAlignment::identity(), BlockCyclic(2, 2));
  MultiDimArray<int> arr(MultiDimMapping{std::move(dims), ProcessorGrid({2, 1, 2})});
  const SpmdExecutor exec(4);
  fill_region(arr, Region{{0, 5, 1}, {0, 4, 1}, {0, 7, 1}}, 1, exec);
  const int total =
      reduce_region(arr, Region{{0, 5, 1}, {0, 4, 1}, {0, 7, 1}}, 0,
                    [](int a, int b) { return a + b; }, exec);
  EXPECT_EQ(total, 6 * 5 * 8);
  // Strided sub-box.
  fill_region(arr, Region{{1, 5, 2}, {0, 4, 2}, {3, 7, 4}}, 10, exec);
  const int boxed =
      reduce_region(arr, Region{{1, 5, 2}, {0, 4, 2}, {3, 7, 4}}, 0,
                    [](int a, int b) { return a + b; }, exec);
  EXPECT_EQ(boxed, 10 * 3 * 3 * 2);
}

TEST(MultiDimArray, AlignedDimension) {
  std::vector<DimMapping> dims;
  dims.emplace_back(10, AffineAlignment{2, 1}, BlockCyclic(2, 4));
  MultiDimArray<double> arr(MultiDimMapping{std::move(dims), ProcessorGrid({2})});
  const SpmdExecutor exec(2);
  fill_region(arr, Region{{0, 9, 1}}, 5.0, exec);
  for (i64 i = 0; i < 10; ++i) EXPECT_EQ(arr.get({i}), 5.0) << i;
  fill_region(arr, Region{{1, 9, 3}}, 9.0, exec);
  for (i64 i = 0; i < 10; ++i)
    EXPECT_EQ(arr.get({i}), (i >= 1 && (i - 1) % 3 == 0) ? 9.0 : 5.0) << i;
}

}  // namespace
}  // namespace cyclick
