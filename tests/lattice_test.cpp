// Tests for the integer-lattice theory layer (paper, Sections 3-4):
// lattice membership, basis predicates, canonical basis construction, and
// the R/L basis selection including its minimality/maximality properties.
#include <gtest/gtest.h>

#include "cyclick/lattice/lattice.hpp"

namespace cyclick {
namespace {

TEST(SectionLattice, MembershipMatchesDefinition) {
  const SectionLattice lat(32, 9);
  // (b, a) in A iff 9 | 32a + b.
  EXPECT_TRUE(lat.contains({9, 0}));    // index 1
  EXPECT_TRUE(lat.contains({4, 1}));    // 36 = 4*9
  EXPECT_TRUE(lat.contains({5, -1}));   // -27 = -3*9
  EXPECT_TRUE(lat.contains({0, 0}));    // origin
  EXPECT_FALSE(lat.contains({1, 0}));
  EXPECT_FALSE(lat.contains({4, 2}));
}

TEST(SectionLattice, ClosedUnderSubtraction) {
  // Theorem 1: A is a lattice, hence closed under subtraction.
  const SectionLattice lat(24, 7);
  std::vector<LatticePoint> pts;
  for (i64 a = -4; a <= 4; ++a)
    for (i64 b = -30; b <= 30; ++b)
      if (lat.contains({b, a})) pts.push_back({b, a});
  ASSERT_GT(pts.size(), 4u);
  for (std::size_t i = 0; i < pts.size(); i += 7)
    for (std::size_t j = 0; j < pts.size(); j += 5)
      EXPECT_TRUE(lat.contains(pts[i] - pts[j]));
}

TEST(SectionLattice, IndexOfRoundTrips) {
  const SectionLattice lat(32, 9);
  for (i64 i = -40; i <= 40; ++i) {
    const SectionPoint pt = lat.point_of_index(i);
    EXPECT_EQ(lat.index_of(pt.v), i);
    EXPECT_GE(pt.v.b, 0);
    EXPECT_LT(pt.v.b, 32);
  }
}

TEST(SectionLattice, CanonicalBasisSweep) {
  for (i64 pk : {4, 6, 8, 15, 32, 64}) {
    for (i64 s : {1, 2, 3, 5, 7, 9, 31, 33, 100}) {
      if (s % pk == 0) continue;  // single-vector degenerate case
      const SectionLattice lat(pk, s);
      const auto [p1, p2] = lat.canonical_basis();
      EXPECT_TRUE(lat.contains(p1.v)) << pk << " " << s;
      EXPECT_TRUE(lat.contains(p2.v)) << pk << " " << s;
      EXPECT_TRUE(lat.is_basis(p1, p2)) << pk << " " << s;
    }
  }
}

TEST(SectionLattice, BasisRejectsDependentVectors) {
  const SectionLattice lat(32, 9);
  const SectionPoint p1 = lat.point_of_index(1);
  const SectionPoint p2 = lat.point_of_index(2);  // collinear in index space?
  // (9,0) and (18,0): det = 0*2 - 0*1 = 0 -> not a basis.
  EXPECT_FALSE(lat.is_basis(p1, p2));
}

TEST(SectionLattice, BasisPreconditionChecked) {
  const SectionLattice lat(32, 9);
  EXPECT_THROW((void)lat.is_basis({{1, 0}, 0}, {{9, 0}, 1}), precondition_error);
}

TEST(MemoryGap, MatchesRowTimesBlockPlusOffset) {
  EXPECT_EQ((LatticePoint{4, 1}.memory_gap(8)), 12);
  EXPECT_EQ((LatticePoint{5, -1}.memory_gap(8)), -3);
  EXPECT_EQ((LatticePoint{0, 0}.memory_gap(8)), 0);
}

TEST(RlBasis, PropertiesAcrossSweep) {
  // For a broad (p, k, s) sweep: R/L are lattice points with offsets in
  // (0, k), R has the smallest positive index among them, L the largest
  // negative, and they are unimodular (Theorem 2).
  for (i64 p : {1, 2, 3, 4, 7}) {
    for (i64 k : {2, 3, 4, 8, 16}) {
      for (i64 s = 1; s <= 3 * p * k + 1; s += 3) {
        const i64 pk = p * k;
        const auto basis = select_rl_basis(p, k, s);
        const i64 d = gcd_i64(s, pk);
        if (d >= k) {
          EXPECT_FALSE(basis.has_value()) << p << " " << k << " " << s;
          continue;
        }
        ASSERT_TRUE(basis.has_value()) << p << " " << k << " " << s;
        const SectionLattice lat(pk, s);
        EXPECT_TRUE(lat.contains(basis->r.v));
        EXPECT_TRUE(lat.contains(basis->l.v));
        EXPECT_TRUE(lat.is_basis(basis->r, basis->l)) << p << " " << k << " " << s;
        EXPECT_GT(basis->r.v.b, 0);
        EXPECT_LT(basis->r.v.b, k);
        EXPECT_GT(basis->l.v.b, 0);
        EXPECT_LT(basis->l.v.b, k);
        EXPECT_GT(basis->r.index, 0);
        EXPECT_LT(basis->l.index, 0);

        // Minimality / maximality: no lattice point with offset in (0, k)
        // has index in (0, r.index) or (l.index, 0).
        for (i64 i = 1; i < basis->r.index; ++i)
          EXPECT_FALSE(lat.point_of_index(i).v.b < k) << p << " " << k << " " << s << " " << i;
        for (i64 i = basis->l.index + 1; i < 0; ++i) {
          const i64 b = lat.point_of_index(i).v.b;  // normalized to [0, pk)
          EXPECT_FALSE(b > 0 && b < k) << p << " " << k << " " << s << " " << i;
        }
      }
    }
  }
}

TEST(RlBasis, DegenerateWhenRowLengthDividesStride) {
  EXPECT_FALSE(select_rl_basis(4, 8, 32).has_value());
  EXPECT_FALSE(select_rl_basis(4, 8, 64).has_value());
}

TEST(RlBasis, RejectsBadArguments) {
  EXPECT_THROW(select_rl_basis(0, 8, 9), precondition_error);
  EXPECT_THROW(select_rl_basis(4, 0, 9), precondition_error);
  EXPECT_THROW(select_rl_basis(4, 8, 0), precondition_error);
  EXPECT_THROW(select_rl_basis(4, 8, -9), precondition_error);
}

TEST(SectionLattice, RejectsBadArguments) {
  EXPECT_THROW(SectionLattice(0, 9), precondition_error);
  EXPECT_THROW(SectionLattice(32, 0), precondition_error);
  EXPECT_THROW(SectionLattice(32, -1), precondition_error);
}

}  // namespace
}  // namespace cyclick
