// Backend-parameterized conformance suite for the Transport interface:
// every test in TransportConformance runs against both the in-process
// transport and the socket transport (loopback mesh — real kernel
// sockets, framing, and reader threads inside one process), pinning down
// the contract the section-copy engines rely on: per-channel FIFO order,
// channel independence, non-blocking sends, blocking receives that wake
// on a matching send, recv deadlines that name the stuck channel, and
// byte-identical transport-routed section copies.
//
// One backend difference is deliberate: socket delivery is asynchronous
// (a message is "sent" once it is in the writer's outbox), so ready() is
// only *eventually* true after a send. The suite probes readiness through
// wait_ready() rather than asserting instantaneous visibility. The sim
// backend leans on the same latitude in the other direction: a message is
// visible to ready()/recv() only once the event heap drains past its
// virtual arrival time, which those calls perform themselves.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <numeric>
#include <thread>

#include "cyclick/net/socket_transport.hpp"
#include "cyclick/runtime/section_ops.hpp"
#include "cyclick/runtime/transport.hpp"
#include "cyclick/sim/sim_transport.hpp"

namespace cyclick {
namespace {

enum class BackendKind { kInProc, kSocketLoopback, kSim };

struct BackendParam {
  const char* name;
  BackendKind kind;
};

std::unique_ptr<Transport> make_transport(BackendKind kind, i64 ranks,
                                          i64 recv_timeout_ms = 0) {
  if (kind == BackendKind::kInProc)
    return std::make_unique<InProcessTransport>(ranks, recv_timeout_ms);
  if (kind == BackendKind::kSim)
    return std::make_unique<sim::SimTransport>(ranks, sim::SimParams{}, recv_timeout_ms);
  net::SocketTransport::Options opts;
  opts.recv_timeout_ms = recv_timeout_ms;
  return net::SocketTransport::loopback_mesh(ranks, opts);
}

/// Readiness probe tolerant of asynchronous delivery: true once ready()
/// reports a waiting message, false if `timeout_ms` passes first.
bool wait_ready(Transport& tr, i64 to, i64 from, i64 timeout_ms = 5000) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  while (!tr.ready(to, from)) {
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return true;
}

class TransportConformance : public ::testing::TestWithParam<BackendParam> {
 protected:
  [[nodiscard]] std::unique_ptr<Transport> transport(i64 ranks,
                                                     i64 recv_timeout_ms = 0) const {
    return make_transport(GetParam().kind, ranks, recv_timeout_ms);
  }
};

INSTANTIATE_TEST_SUITE_P(
    Backends, TransportConformance,
    ::testing::Values(BackendParam{"inproc", BackendKind::kInProc},
                      BackendParam{"socket", BackendKind::kSocketLoopback},
                      BackendParam{"sim", BackendKind::kSim}),
    [](const ::testing::TestParamInfo<BackendParam>& pi) { return pi.param.name; });

TEST_P(TransportConformance, FifoPerChannel) {
  const auto tr = transport(2);
  send_values<int>(*tr, 0, 1, std::vector<int>{1, 2, 3});
  send_values<int>(*tr, 0, 1, std::vector<int>{4, 5});
  EXPECT_TRUE(wait_ready(*tr, 1, 0));
  EXPECT_EQ(recv_values<int>(*tr, 1, 0), (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(recv_values<int>(*tr, 1, 0), (std::vector<int>{4, 5}));
  EXPECT_FALSE(tr->ready(1, 0));
}

TEST_P(TransportConformance, SelfChannelRoundTrips) {
  const auto tr = transport(3);
  send_values<i64>(*tr, 1, 1, std::vector<i64>{42, 43});
  EXPECT_TRUE(wait_ready(*tr, 1, 1));
  EXPECT_EQ(recv_values<i64>(*tr, 1, 1), (std::vector<i64>{42, 43}));
}

TEST_P(TransportConformance, ChannelsAreIndependent) {
  const auto tr = transport(3);
  send_values<double>(*tr, 0, 2, std::vector<double>{1.5});
  send_values<double>(*tr, 1, 2, std::vector<double>{2.5});
  send_values<double>(*tr, 2, 0, std::vector<double>{3.5});
  EXPECT_EQ(recv_values<double>(*tr, 2, 1), (std::vector<double>{2.5}));
  EXPECT_EQ(recv_values<double>(*tr, 2, 0), (std::vector<double>{1.5}));
  EXPECT_EQ(recv_values<double>(*tr, 0, 2), (std::vector<double>{3.5}));
}

TEST_P(TransportConformance, EmptyPayloadRoundTrips) {
  const auto tr = transport(2);
  send_values<int>(*tr, 0, 1, std::vector<int>{});
  EXPECT_TRUE(recv_values<int>(*tr, 1, 0).empty());
}

TEST_P(TransportConformance, LargePayloadRoundTrips) {
  // ~1 MiB of doubles per message — far beyond a Unix socket buffer, so
  // the socket backend must survive partial writes/reads and the writer
  // thread must keep send() non-blocking. Two messages pin FIFO across
  // frame reassembly.
  const i64 n = 128 * 1024;
  std::vector<double> first(static_cast<std::size_t>(n));
  std::iota(first.begin(), first.end(), 0.0);
  std::vector<double> second(static_cast<std::size_t>(n));
  std::iota(second.begin(), second.end(), 1e6);
  const auto tr = transport(2);
  send_values<double>(*tr, 0, 1, first);
  send_values<double>(*tr, 0, 1, second);
  EXPECT_EQ(recv_values<double>(*tr, 1, 0), first);
  EXPECT_EQ(recv_values<double>(*tr, 1, 0), second);
}

TEST_P(TransportConformance, BlockingRecvWakesOnSend) {
  const auto tr = transport(2);
  std::vector<int> got;
  std::thread receiver([&] { got = recv_values<int>(*tr, 1, 0); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  send_values<int>(*tr, 0, 1, std::vector<int>{7, 8, 9});
  receiver.join();
  EXPECT_EQ(got, (std::vector<int>{7, 8, 9}));
}

TEST_P(TransportConformance, CrossPhaseBlockingRecv) {
  // Sends from one executor phase must satisfy receives issued in a later
  // phase (the engines' barrier-separated pack/unpack shape).
  const i64 p = 4;
  const auto tr = transport(p);
  const SpmdExecutor exec(p, SpmdExecutor::Mode::kThreads);
  exec.run([&](i64 r) { send_values<i64>(*tr, r, (r + 1) % p, std::vector<i64>{r * 10}); });
  std::vector<i64> got(static_cast<std::size_t>(p), -1);
  exec.run([&](i64 r) {
    got[static_cast<std::size_t>(r)] =
        recv_values<i64>(*tr, r, (r + p - 1) % p).at(0);
  });
  for (i64 r = 0; r < p; ++r)
    EXPECT_EQ(got[static_cast<std::size_t>(r)], ((r + p - 1) % p) * 10);
}

TEST_P(TransportConformance, SinglePhaseRingUnderThreads) {
  // Each rank sends its id to the next rank and receives from the previous
  // — a single-phase protocol that requires blocking receives.
  const i64 p = 8;
  const auto tr = transport(p);
  const SpmdExecutor exec(p, SpmdExecutor::Mode::kThreads);
  std::vector<i64> got(static_cast<std::size_t>(p), -1);
  exec.run([&](i64 r) {
    send_values<i64>(*tr, r, (r + 1) % p, std::vector<i64>{r});
    const auto in = recv_values<i64>(*tr, r, (r + p - 1) % p);
    got[static_cast<std::size_t>(r)] = in.at(0);
  });
  for (i64 r = 0; r < p; ++r)
    EXPECT_EQ(got[static_cast<std::size_t>(r)], (r + p - 1) % p);
}

TEST_P(TransportConformance, ReadyAndFifoUnderThreadedInterleaving) {
  // Interleaved multi-message exchange under the threaded executor: every
  // rank sends three tagged messages to each other rank (interleaving the
  // destinations), then drains each incoming channel. Checks that a
  // message becomes visible to ready() eventually, and that messages on
  // one channel arrive in send order even when sends to different
  // destinations interleave.
  const i64 p = 4;
  const i64 burst = 3;
  const auto tr = transport(p);
  const SpmdExecutor exec(p, SpmdExecutor::Mode::kThreads);

  // Phase 1: interleaved sends — for seq = 0..2, send to every peer.
  exec.run([&](i64 r) {
    for (i64 seq = 0; seq < burst; ++seq)
      for (i64 to = 0; to < p; ++to)
        if (to != r) send_values<i64>(*tr, r, to, std::vector<i64>{r, to, seq});
  });

  // Phase 2 (after the executor barrier): every channel must become ready,
  // and draining must observe seq in send order.
  std::vector<int> ok(static_cast<std::size_t>(p), 0);
  exec.run([&](i64 r) {
    bool good = true;
    for (i64 from = 0; from < p; ++from) {
      if (from == r) continue;
      good = good && wait_ready(*tr, r, from);
      for (i64 seq = 0; seq < burst; ++seq) {
        const auto msg = recv_values<i64>(*tr, r, from);
        good = good && msg == (std::vector<i64>{from, r, seq});
      }
      good = good && !tr->ready(r, from);  // channel fully drained
    }
    ok[static_cast<std::size_t>(r)] = good ? 1 : 0;
  });
  for (i64 r = 0; r < p; ++r) EXPECT_EQ(ok[static_cast<std::size_t>(r)], 1) << "rank " << r;
}

TEST_P(TransportConformance, RankBoundsChecked) {
  const auto tr = transport(2);
  EXPECT_THROW(tr->send(2, 0, {}), precondition_error);
  EXPECT_THROW(tr->send(0, -1, {}), precondition_error);
  EXPECT_THROW((void)tr->ready(0, -1), precondition_error);
}

TEST_P(TransportConformance, RecvTimeoutNamesStuckChannel) {
  // A deadline on a channel nobody sends to must fail fast with the
  // channel named, not hang.
  const auto tr = transport(2, /*recv_timeout_ms=*/50);
  try {
    (void)tr->recv(1, 0);
    FAIL() << "recv should have timed out";
  } catch (const TransportError& e) {
    EXPECT_NE(std::string(e.what()).find("0->1"), std::string::npos) << e.what();
  }
}

TEST_P(TransportConformance, RecvTimeoutDoesNotFireWhenDataArrives) {
  const auto tr = transport(2, /*recv_timeout_ms=*/5000);
  send_values<int>(*tr, 0, 1, std::vector<int>{11});
  EXPECT_EQ(recv_values<int>(*tr, 1, 0), (std::vector<int>{11}));
}

std::vector<double> iota_image(i64 n) {
  std::vector<double> v(static_cast<std::size_t>(n));
  std::iota(v.begin(), v.end(), 0.0);
  return v;
}

TEST_P(TransportConformance, TransportCopyMatchesDirectCopy) {
  for (const auto mode : {SpmdExecutor::Mode::kSequential, SpmdExecutor::Mode::kThreads}) {
    const SpmdExecutor exec(4, mode);
    const auto tr = transport(4);
    DistributedArray<double> a(BlockCyclic(4, 3), 200);
    DistributedArray<double> b1(BlockCyclic(4, 8), 320), b2(BlockCyclic(4, 8), 320);
    a.scatter(iota_image(200));
    const RegularSection ssec{0, 199, 2};
    const RegularSection dsec{10, 307, 3};
    const CommPlan plan = build_copy_plan(a, ssec, b1, dsec, exec);
    execute_copy_plan(plan, a, b1, exec);
    execute_copy_plan_over(plan, a, b2, exec, *tr);
    EXPECT_EQ(b1.gather(), b2.gather());
  }
}

// --- nonblocking primitives (isend / irecv / CompletionQueue) --------------

std::vector<std::byte> bytes_of(std::initializer_list<int> vals) {
  std::vector<std::byte> out;
  for (int v : vals) out.push_back(static_cast<std::byte>(v));
  return out;
}

TEST_P(TransportConformance, IsendIrecvRoundtrip) {
  const auto tr = transport(2);
  CompletionQueue cq(4);
  tr->irecv(1, 0, cq, /*tag=*/7);
  tr->isend(0, 1, bytes_of({1, 2, 3}), nullptr, 7);
  const Completion c = cq.wait(5000);
  EXPECT_EQ(c.kind, Completion::Kind::kRecv);
  EXPECT_EQ(c.from, 0);
  EXPECT_EQ(c.to, 1);
  EXPECT_EQ(c.tag, 7);
  EXPECT_EQ(c.payload, bytes_of({1, 2, 3}));
}

TEST_P(TransportConformance, IsendCompletionReported) {
  const auto tr = transport(2);
  CompletionQueue cq(4);
  tr->isend(0, 1, bytes_of({9}), &cq, 3);
  const Completion c = cq.wait(5000);
  EXPECT_EQ(c.kind, Completion::Kind::kSend);
  EXPECT_EQ(c.tag, 3);
  EXPECT_EQ(recv_values<std::byte>(*tr, 1, 0), bytes_of({9}));
}

TEST_P(TransportConformance, IrecvMatchesAlreadyQueuedMessage) {
  const auto tr = transport(2);
  tr->send(0, 1, bytes_of({5, 6}));
  ASSERT_TRUE(wait_ready(*tr, 1, 0));
  CompletionQueue cq(2);
  tr->irecv(1, 0, cq, 0);
  EXPECT_EQ(cq.wait(5000).payload, bytes_of({5, 6}));
}

TEST_P(TransportConformance, OutOfOrderCompletionArrival) {
  // Receives posted for two different senders complete in *arrival* order,
  // not posting order; the tag identifies which is which.
  const auto tr = transport(3);
  CompletionQueue cq(4);
  tr->irecv(0, 1, cq, /*tag=*/1);
  tr->irecv(0, 2, cq, /*tag=*/2);
  tr->send(2, 0, bytes_of({22}));
  const Completion first = cq.wait(5000);
  EXPECT_EQ(first.tag, 2);
  EXPECT_EQ(first.from, 2);
  tr->send(1, 0, bytes_of({11}));
  const Completion second = cq.wait(5000);
  EXPECT_EQ(second.tag, 1);
  EXPECT_EQ(second.payload, bytes_of({11}));
}

TEST_P(TransportConformance, WindowExhaustionBlocksInsteadOfDropping) {
  // A full credit window makes the *poster* block until a completion is
  // reaped — nothing is dropped and nothing throws.
  const auto tr = transport(2);
  CompletionQueue cq(2);
  tr->send(0, 1, bytes_of({1}));
  tr->send(0, 1, bytes_of({2}));
  tr->send(0, 1, bytes_of({3}));
  ASSERT_TRUE(wait_ready(*tr, 1, 0));
  tr->irecv(1, 0, cq, 0);
  tr->irecv(1, 0, cq, 1);
  std::atomic<bool> third_posted{false};
  std::thread poster([&] {
    tr->irecv(1, 0, cq, 2);  // blocks: both credits held by unreaped ops
    third_posted = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(third_posted.load());
  EXPECT_EQ(cq.wait(5000).tag, 0);  // reap -> credit freed -> poster unblocks
  poster.join();
  EXPECT_TRUE(third_posted.load());
  EXPECT_EQ(cq.wait(5000).tag, 1);
  EXPECT_EQ(cq.wait(5000).payload, bytes_of({3}));
}

TEST_P(TransportConformance, CompletionWaitTimeoutNamesChannelAndPhase) {
  // The deadline counts from when the pipeline *waits*, and the error
  // names the oldest pending op's channel and tag (= schedule phase).
  const auto tr = transport(2);
  CompletionQueue cq(2);
  tr->irecv(1, 0, cq, /*tag=*/7);
  try {
    (void)cq.wait(50);
    FAIL() << "wait should have timed out";
  } catch (const TransportError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("0->1"), std::string::npos) << what;
    EXPECT_NE(what.find("phase 7"), std::string::npos) << what;
  }
  tr->cancel_posted(cq);
}

TEST_P(TransportConformance, TimeoutCountsFromWaitNotFromPost) {
  // An irecv may sit posted longer than the deadline as long as the
  // consumer is not waiting on it yet.
  const auto tr = transport(2, /*recv_timeout_ms=*/150);
  CompletionQueue cq(2);
  tr->irecv(1, 0, cq, 0);
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  tr->send(0, 1, bytes_of({8}));
  EXPECT_EQ(cq.wait(tr->recv_timeout_ms()).payload, bytes_of({8}));
}

TEST_P(TransportConformance, CancelPostedDropsPendingOps) {
  const auto tr = transport(2);
  CompletionQueue cq(4);
  tr->irecv(1, 0, cq, 0);
  tr->irecv(1, 0, cq, 1);
  tr->cancel_posted(cq);
  EXPECT_EQ(cq.in_flight(), 0);
  // A message sent after cancellation stays in the queue for blocking recv
  // rather than feeding a withdrawn op.
  tr->send(0, 1, bytes_of({4}));
  EXPECT_EQ(recv_values<std::byte>(*tr, 1, 0), bytes_of({4}));
}

TEST_P(TransportConformance, TryRecvIsNonblocking) {
  const auto tr = transport(2);
  std::vector<std::byte> out;
  EXPECT_FALSE(tr->try_recv(1, 0, out));
  tr->send(0, 1, bytes_of({3, 1}));
  ASSERT_TRUE(wait_ready(*tr, 1, 0));
  EXPECT_TRUE(tr->try_recv(1, 0, out));
  EXPECT_EQ(out, bytes_of({3, 1}));
  EXPECT_FALSE(tr->try_recv(1, 0, out));
}

TEST(SocketTransportLocal, RankFailureFailsPostedReceives) {
  // Cancellation on rank failure: when the peer's endpoint dies while a
  // receive is posted, the completion surfaces as a TransportError naming
  // the closed channel rather than hanging.
  char tmpl[] = "/tmp/cyclick_rankfail_XXXXXX";
  ASSERT_NE(::mkdtemp(tmpl), nullptr);
  std::unique_ptr<net::SocketTransport> r0;
  std::thread joiner([&] { r0 = net::SocketTransport::connect_mesh(0, 2, tmpl); });
  const auto r1 = net::SocketTransport::connect_mesh(1, 2, tmpl);
  joiner.join();
  CompletionQueue cq(2);
  r1->irecv(1, 0, cq, /*tag=*/4);
  r0.reset();  // rank 0 exits without sending
  try {
    (void)cq.wait(5000);
    FAIL() << "posted receive should fail when the sender exits";
  } catch (const TransportError& e) {
    EXPECT_NE(std::string(e.what()).find("0->1"), std::string::npos) << e.what();
  }
  r1->cancel_posted(cq);
}

// --- in-process-only behavior ---------------------------------------------

TEST(InProcessTransport, AllMessagesConsumedByPlanExecution) {
  const SpmdExecutor exec(4);
  InProcessTransport tr(4);
  DistributedArray<double> a(BlockCyclic(4, 3), 200);
  DistributedArray<double> b(BlockCyclic(4, 8), 320);
  const RegularSection ssec{0, 199, 2};
  const RegularSection dsec{10, 307, 3};
  const CommPlan plan = build_copy_plan(a, ssec, b, dsec, exec);
  execute_copy_plan_over(plan, a, b, exec, tr);
  EXPECT_EQ(tr.in_flight(), 0);  // every message consumed
  EXPECT_GT(plan.message_count(), 0);
}

TEST(InProcessTransport, ConstructionRequiresAtLeastOneRank) {
  EXPECT_THROW(InProcessTransport(0), precondition_error);
}

// --- socket-only behavior --------------------------------------------------

TEST(SocketTransportLocal, NonLocalRankRejected) {
  // A loopback mesh owns every rank; shrink-wrap the locality error with a
  // 1-rank world asked about rank arithmetic beyond it instead.
  const auto tr = net::SocketTransport::loopback_mesh(2);
  EXPECT_TRUE(tr->is_local(0));
  EXPECT_TRUE(tr->is_local(1));
  EXPECT_FALSE(tr->is_local(2));
  EXPECT_FALSE(tr->is_local(-1));
}

TEST(SocketTransportLocal, ChannelStatsCountDeliveredTraffic) {
  obs::set_enabled(true);
  const auto tr = net::SocketTransport::loopback_mesh(2);
  send_values<i64>(*tr, 0, 1, std::vector<i64>{1, 2, 3, 4});
  (void)recv_values<i64>(*tr, 1, 0);
  const ChannelStats st = tr->channel_stats(0, 1);
  obs::set_enabled(false);
  EXPECT_EQ(st.messages, 1);
  EXPECT_EQ(st.bytes, 32);
}

}  // namespace
}  // namespace cyclick
