// Tests for the in-process message transport and the transport-routed
// section copy.
#include <gtest/gtest.h>

#include <numeric>
#include <thread>

#include "cyclick/runtime/section_ops.hpp"
#include "cyclick/runtime/transport.hpp"

namespace cyclick {
namespace {

TEST(Transport, FifoPerChannel) {
  InProcessTransport tr(2);
  send_values<int>(tr, 0, 1, std::vector<int>{1, 2, 3});
  send_values<int>(tr, 0, 1, std::vector<int>{4, 5});
  EXPECT_TRUE(tr.ready(1, 0));
  EXPECT_EQ(recv_values<int>(tr, 1, 0), (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(recv_values<int>(tr, 1, 0), (std::vector<int>{4, 5}));
  EXPECT_FALSE(tr.ready(1, 0));
}

TEST(Transport, ChannelsAreIndependent) {
  InProcessTransport tr(3);
  send_values<double>(tr, 0, 2, std::vector<double>{1.5});
  send_values<double>(tr, 1, 2, std::vector<double>{2.5});
  send_values<double>(tr, 2, 0, std::vector<double>{3.5});
  EXPECT_EQ(recv_values<double>(tr, 2, 1), (std::vector<double>{2.5}));
  EXPECT_EQ(recv_values<double>(tr, 2, 0), (std::vector<double>{1.5}));
  EXPECT_EQ(recv_values<double>(tr, 0, 2), (std::vector<double>{3.5}));
  EXPECT_EQ(tr.in_flight(), 0);
}

TEST(Transport, EmptyPayloadRoundTrips) {
  InProcessTransport tr(2);
  send_values<int>(tr, 0, 1, std::vector<int>{});
  EXPECT_TRUE(recv_values<int>(tr, 1, 0).empty());
}

TEST(Transport, BlockingRecvWakesOnSend) {
  InProcessTransport tr(2);
  std::vector<int> got;
  std::thread receiver([&] { got = recv_values<int>(tr, 1, 0); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  send_values<int>(tr, 0, 1, std::vector<int>{7, 8, 9});
  receiver.join();
  EXPECT_EQ(got, (std::vector<int>{7, 8, 9}));
}

TEST(Transport, SinglePhaseRingUnderThreads) {
  // Each rank sends its id to the next rank and receives from the previous
  // — a single-phase protocol that requires blocking receives.
  const i64 p = 8;
  InProcessTransport tr(p);
  const SpmdExecutor exec(p, SpmdExecutor::Mode::kThreads);
  std::vector<i64> got(static_cast<std::size_t>(p), -1);
  exec.run([&](i64 r) {
    send_values<i64>(tr, r, (r + 1) % p, std::vector<i64>{r});
    const auto in = recv_values<i64>(tr, r, (r + p - 1) % p);
    got[static_cast<std::size_t>(r)] = in.at(0);
  });
  for (i64 r = 0; r < p; ++r)
    EXPECT_EQ(got[static_cast<std::size_t>(r)], (r + p - 1) % p);
}

TEST(Transport, ReadyAndFifoUnderThreadedInterleaving) {
  // Interleaved multi-message exchange under the threaded executor: every
  // rank sends three tagged messages to each other rank (interleaving the
  // destinations), then drains each incoming channel. Checks the two
  // ordering guarantees the engines rely on: ready() is a reliable
  // has-a-message probe once the sender's phase is done, and messages on
  // one channel arrive in send order even when sends to different
  // destinations interleave.
  const i64 p = 4;
  const i64 burst = 3;
  InProcessTransport tr(p);
  const SpmdExecutor exec(p, SpmdExecutor::Mode::kThreads);

  // Phase 1: interleaved sends — for seq = 0..2, send to every peer.
  exec.run([&](i64 r) {
    for (i64 seq = 0; seq < burst; ++seq)
      for (i64 to = 0; to < p; ++to)
        if (to != r) send_values<i64>(tr, r, to, std::vector<i64>{r, to, seq});
  });

  // Phase 2 (after the executor barrier): every channel must report ready,
  // and draining must observe seq in send order.
  std::vector<int> ok(static_cast<std::size_t>(p), 0);
  exec.run([&](i64 r) {
    bool good = true;
    for (i64 from = 0; from < p; ++from) {
      if (from == r) continue;
      good = good && tr.ready(r, from);
      for (i64 seq = 0; seq < burst; ++seq) {
        const auto msg = recv_values<i64>(tr, r, from);
        good = good && msg == (std::vector<i64>{from, r, seq});
      }
      good = good && !tr.ready(r, from);  // channel fully drained
    }
    ok[static_cast<std::size_t>(r)] = good ? 1 : 0;
  });
  for (i64 r = 0; r < p; ++r) EXPECT_EQ(ok[static_cast<std::size_t>(r)], 1) << "rank " << r;
  EXPECT_EQ(tr.in_flight(), 0);
}

TEST(Transport, RankBoundsChecked) {
  InProcessTransport tr(2);
  EXPECT_THROW(tr.send(2, 0, {}), precondition_error);
  EXPECT_THROW((void)tr.ready(0, -1), precondition_error);
  EXPECT_THROW(InProcessTransport(0), precondition_error);
}

std::vector<double> iota_image(i64 n) {
  std::vector<double> v(static_cast<std::size_t>(n));
  std::iota(v.begin(), v.end(), 0.0);
  return v;
}

TEST(TransportCopy, MatchesDirectCopy) {
  for (const auto mode : {SpmdExecutor::Mode::kSequential, SpmdExecutor::Mode::kThreads}) {
    const SpmdExecutor exec(4, mode);
    InProcessTransport tr(4);
    DistributedArray<double> a(BlockCyclic(4, 3), 200);
    DistributedArray<double> b1(BlockCyclic(4, 8), 320), b2(BlockCyclic(4, 8), 320);
    a.scatter(iota_image(200));
    const RegularSection ssec{0, 199, 2};
    const RegularSection dsec{10, 307, 3};
    const CommPlan plan = build_copy_plan(a, ssec, b1, dsec, exec);
    execute_copy_plan(plan, a, b1, exec);
    execute_copy_plan_over(plan, a, b2, exec, tr);
    EXPECT_EQ(b1.gather(), b2.gather());
    EXPECT_EQ(tr.in_flight(), 0);  // every message consumed
  }
}

TEST(TransportCopy, MessageCountMatchesPlan) {
  const SpmdExecutor exec(4);
  InProcessTransport tr(4);
  DistributedArray<double> a(BlockCyclic(4, 3), 200);
  DistributedArray<double> b(BlockCyclic(4, 8), 320);
  const RegularSection ssec{0, 199, 2};
  const RegularSection dsec{10, 307, 3};
  const CommPlan plan = build_copy_plan(a, ssec, b, dsec, exec);
  // Count messages by intercepting: run only phase 1 via a scratch
  // transport, then drain and count.
  execute_copy_plan_over(plan, a, b, exec, tr);
  // All drained by phase 2.
  EXPECT_EQ(tr.in_flight(), 0);
  EXPECT_GT(plan.message_count(), 0);
}

}  // namespace
}  // namespace cyclick
