// Tests for DistributedArray storage and addressing.
#include <gtest/gtest.h>

#include "cyclick/runtime/distributed_array.hpp"

namespace cyclick {
namespace {

TEST(DistributedArray, GatherScatterRoundTrip) {
  DistributedArray<double> arr(BlockCyclic(4, 8), 100);
  std::vector<double> image(100);
  for (std::size_t i = 0; i < 100; ++i) image[i] = static_cast<double>(i) * 1.5;
  arr.scatter(image);
  EXPECT_EQ(arr.gather(), image);
}

TEST(DistributedArray, GetSetThroughOwners) {
  DistributedArray<int> arr(BlockCyclic(3, 2), 20);
  for (i64 i = 0; i < 20; ++i) arr.set(i, static_cast<int>(i * i));
  for (i64 i = 0; i < 20; ++i) EXPECT_EQ(arr.get(i), i * i);
}

TEST(DistributedArray, LocalSpansPartitionElements) {
  const BlockCyclic dist(4, 3);
  DistributedArray<int> arr(dist, 50);
  for (i64 i = 0; i < 50; ++i) arr.set(i, 1);
  i64 total = 0;
  for (i64 m = 0; m < 4; ++m)
    for (const int v : arr.local(m)) total += v;
  EXPECT_EQ(total, 50);
}

TEST(DistributedArray, IdentityAddressingMatchesDistribution) {
  const BlockCyclic dist(4, 8);
  DistributedArray<double> arr(dist, 320);
  for (i64 i = 0; i < 320; i += 13) {
    EXPECT_EQ(arr.owner_of(i), dist.owner(i));
    EXPECT_EQ(arr.local_address(i), dist.local_index(i));
  }
}

TEST(DistributedArray, AlignedStorageIsPackedAndComplete) {
  // A(i) aligned with cell 2i+1 on a 2-proc cyclic(4) template.
  const BlockCyclic dist(2, 4);
  const AffineAlignment al{2, 1};
  DistributedArray<int> arr(dist, 30, al);
  // Each rank's local buffer is exactly its share, no holes.
  i64 total = 0;
  for (i64 m = 0; m < 2; ++m) total += static_cast<i64>(arr.local(m).size());
  EXPECT_EQ(total, 30);
  // Round-trip through owner/local addressing.
  for (i64 i = 0; i < 30; ++i) arr.set(i, static_cast<int>(100 + i));
  for (i64 i = 0; i < 30; ++i) EXPECT_EQ(arr.get(i), 100 + i) << i;
  // Packed order: increasing array index within a rank (positive coeff).
  for (i64 m = 0; m < 2; ++m) {
    i64 prev = -1;
    for (i64 i = 0; i < 30; ++i) {
      if (arr.owner_of(i) != m) continue;
      EXPECT_GT(arr.local_address(i), prev) << i;
      prev = arr.local_address(i);
    }
  }
}

TEST(DistributedArray, AlignedGatherRoundTrip) {
  const BlockCyclic dist(3, 2);
  DistributedArray<double> arr(dist, 25, AffineAlignment{-3, 80});
  std::vector<double> image(25);
  for (std::size_t i = 0; i < 25; ++i) image[i] = static_cast<double>(i) - 7.5;
  arr.scatter(image);
  EXPECT_EQ(arr.gather(), image);
}

TEST(DistributedArray, BoundsChecked) {
  DistributedArray<int> arr(BlockCyclic(2, 2), 10);
  EXPECT_THROW((void)arr.get(-1), precondition_error);
  EXPECT_THROW((void)arr.get(10), precondition_error);
  EXPECT_THROW((void)arr.set(10, 1), precondition_error);
  EXPECT_THROW((void)arr.local(2), precondition_error);
  EXPECT_THROW((void)arr.packed_layout(0), precondition_error);  // identity array
  std::vector<int> too_small(5);
  EXPECT_THROW((void)arr.scatter(std::span<const int>(too_small)), precondition_error);
}

}  // namespace
}  // namespace cyclick
