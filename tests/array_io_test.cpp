// Tests for distributed-array stream I/O (text and binary images).
#include <gtest/gtest.h>

#include <numeric>
#include <sstream>

#include "cyclick/runtime/array_io.hpp"

namespace cyclick {
namespace {

TEST(ArrayIo, TextRoundTrip1D) {
  DistributedArray<double> a(BlockCyclic(4, 3), 50);
  std::vector<double> image(50);
  std::iota(image.begin(), image.end(), -7.5);
  a.scatter(image);
  std::stringstream ss;
  save_text(ss, a);
  DistributedArray<double> b(BlockCyclic(2, 8), 50);  // different distribution
  load_text(ss, b);
  EXPECT_EQ(b.gather(), image);
}

TEST(ArrayIo, TextHeaderIsHumanReadable) {
  DistributedArray<int> a(BlockCyclic(2, 2), 6);
  a.scatter(std::vector<int>{1, 2, 3, 4, 5, 6});
  std::stringstream ss;
  save_text(ss, a);
  const std::string out = ss.str();
  EXPECT_NE(out.find("cyclick-array v1\n"), std::string::npos);
  EXPECT_NE(out.find("dims 1 6\n"), std::string::npos);
  EXPECT_NE(out.find("1 2 3 4 5 6"), std::string::npos);
}

TEST(ArrayIo, TextRoundTripMultiDim) {
  std::vector<DimMapping> dims;
  dims.emplace_back(6, AffineAlignment::identity(), BlockCyclic(2, 2));
  dims.emplace_back(5, AffineAlignment::identity(), BlockCyclic(2, 1));
  MultiDimArray<double> a(MultiDimMapping{std::move(dims), ProcessorGrid({2, 2})});
  std::vector<double> image(30);
  std::iota(image.begin(), image.end(), 0.0);
  a.scatter(image);
  std::stringstream ss;
  save_text(ss, a);

  std::vector<DimMapping> dims2;
  dims2.emplace_back(6, AffineAlignment::identity(), BlockCyclic(1, 6));
  dims2.emplace_back(5, AffineAlignment::identity(), BlockCyclic(4, 2));
  MultiDimArray<double> b(MultiDimMapping{std::move(dims2), ProcessorGrid({1, 4})});
  load_text(ss, b);
  EXPECT_EQ(b.gather(), image);
}

TEST(ArrayIo, BinaryRoundTrip) {
  DistributedArray<double> a(BlockCyclic(3, 5), 77);
  std::vector<double> image(77);
  for (std::size_t i = 0; i < image.size(); ++i)
    image[i] = static_cast<double>(i) * 0.3125 - 4.0;  // exact in binary
  a.scatter(image);
  std::stringstream ss;
  save_binary(ss, a);
  DistributedArray<double> b(BlockCyclic(7, 2), 77);
  load_binary(ss, b);
  EXPECT_EQ(b.gather(), image);
}

TEST(ArrayIo, ShapeMismatchRejected) {
  DistributedArray<double> a(BlockCyclic(2, 2), 10), b(BlockCyclic(2, 2), 11);
  std::stringstream ss;
  save_text(ss, a);
  EXPECT_THROW(load_text(ss, b), io_error);
}

TEST(ArrayIo, GarbageRejected) {
  DistributedArray<double> a(BlockCyclic(2, 2), 10);
  {
    std::stringstream ss("not an array at all");
    EXPECT_THROW(load_text(ss, a), io_error);
  }
  {
    std::stringstream ss("cyclick-array v1\ndims 1 10\n1 2 3");  // truncated
    EXPECT_THROW(load_text(ss, a), io_error);
  }
  {
    std::stringstream ss("XXXX");
    EXPECT_THROW(load_binary(ss, a), io_error);
  }
}

TEST(ArrayIo, BinarySurvivesRedistributionWorkflow) {
  // Checkpoint under one distribution, restore under another, values equal.
  DistributedArray<double> a(BlockCyclic(4, 8), 320);
  std::vector<double> image(320);
  std::iota(image.begin(), image.end(), 1.0);
  a.scatter(image);
  std::stringstream ss;
  save_binary(ss, a);
  DistributedArray<double> b(BlockCyclic(4, 3), 320, AffineAlignment{2, 1});
  load_binary(ss, b);
  EXPECT_EQ(b.gather(), image);
}

}  // namespace
}  // namespace cyclick
